// Synchronization-layer tests (src/base/sync.h) plus TSan regression
// tests for the concrete races the thread-safety annotation pass
// surfaced and fixed:
//
//  * WorkerPool::set_fail_fast used to write the flag with no lock while
//    drain() read it under the mutex — flipping it during a run was a
//    data race. It is mutex-guarded now; the concurrent-flip test fails
//    under -fsanitize=thread against the old code.
//
//  * ProgressMonitor::start/stop used to assign thread_ outside any
//    lock, and two concurrent stop() calls could double-join the
//    sampling thread and race on final_rendered_ (rendering the final
//    summary twice). Both are serialized by control_mu_ now; the
//    concurrent-stop tests pin join-once and render-once.
//
// The plain Mutex/MutexLock/CondVar tests exist so the annotated
// wrappers keep behaving exactly like the std primitives they wrap.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "mp/sched/worker_pool.h"
#include "obs/monitor.h"

namespace {

using javer::mp::sched::WorkerPool;
using javer::obs::MonitorOptions;
using javer::obs::ProgressBoard;
using javer::obs::ProgressMonitor;
using javer::obs::ProgressState;
using javer::obs::TaskProgress;

TEST(Sync, MutexLockExcludes) {
  javer::base::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        javer::base::MutexLock lock(mu);
        counter++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(Sync, TryLockReportsContention) {
  javer::base::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

TEST(Sync, CondVarHandshake) {
  javer::base::Mutex mu;
  javer::base::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    javer::base::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  });
  {
    javer::base::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(Sync, CondVarWaitForTimesOut) {
  javer::base::Mutex mu;
  javer::base::CondVar cv;
  javer::base::MutexLock lock(mu);
  // Nobody notifies: wait_for must come back on its own, lock held.
  cv.wait_for(mu, std::chrono::milliseconds(1));
}

// Regression (TSan): flipping fail-fast from another thread while a run
// drains used to race drain()'s locked read of the flag.
TEST(Sync, WorkerPoolSetFailFastDuringRun) {
  WorkerPool pool(4);
  std::atomic<int> executed{0};
  for (int round = 0; round < 10; ++round) {
    std::thread flipper([&] {
      pool.set_fail_fast(round % 2 == 0);
      pool.set_fail_fast(false);
    });
    pool.run(64, [&](std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    flipper.join();
  }
  EXPECT_EQ(executed.load(), 10 * 64);
  EXPECT_FALSE(pool.fail_fast());
}

TEST(Sync, WorkerPoolFailFastStillSkipsQueued) {
  WorkerPool pool(2);
  pool.set_fail_fast(true);
  EXPECT_TRUE(pool.fail_fast());
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.run(1000,
               [&](std::size_t i) {
                 if (i == 0) throw std::runtime_error("boom");
                 executed.fetch_add(1, std::memory_order_relaxed);
               }),
      std::runtime_error);
  // Fail-fast skips the queued tail (in-flight items may still finish).
  EXPECT_LT(executed.load(), 1000);
}

// Regression (TSan): the job descriptor is copied out under the mutex;
// back-to-back runs with different item counts and bodies must never
// let a worker observe a stale descriptor.
TEST(Sync, WorkerPoolBackToBackRunsPublishJob) {
  WorkerPool pool(4);
  for (int round = 1; round <= 50; ++round) {
    std::atomic<int> executed{0};
    pool.run(static_cast<std::size_t>(round), [&](std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(executed.load(), round);
  }
}

// Regression (TSan): two threads calling stop() concurrently used to
// double-join the sampling thread and race on final_rendered_.
TEST(Sync, MonitorConcurrentStopJoinsOnceRendersOnce) {
  for (int round = 0; round < 20; ++round) {
    ProgressBoard board;
    TaskProgress* cell = board.register_task(/*property=*/0, /*shard=*/0);
    cell->set_state(ProgressState::kHolds);
    MonitorOptions opts;
    opts.interval_seconds = 0.001;
    std::ostringstream out;
    opts.out = &out;
    ProgressMonitor monitor(&board, opts);
    monitor.start();
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&] { monitor.stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    std::string text = out.str();
    std::size_t finals = 0;
    for (std::size_t pos = text.find("progress: final");
         pos != std::string::npos;
         pos = text.find("progress: final", pos + 1)) {
      finals++;
    }
    EXPECT_EQ(finals, 1u) << text;
  }
}

// Regression (TSan): start() used to assign thread_ with no lock, racing
// a concurrent stop()'s joinable() check.
TEST(Sync, MonitorConcurrentStartStop) {
  for (int round = 0; round < 20; ++round) {
    ProgressBoard board;
    MonitorOptions opts;
    opts.interval_seconds = 0.001;
    ProgressMonitor monitor(&board, opts);
    std::thread starter([&] { monitor.start(); });
    std::thread stopper([&] { monitor.stop(); });
    starter.join();
    stopper.join();
    // Whatever the interleaving resolved to, a final stop() must leave
    // the monitor idle and destructible.
    monitor.stop();
  }
}

TEST(Sync, MonitorRestartAfterStop) {
  ProgressBoard board;
  MonitorOptions opts;
  opts.interval_seconds = 0.001;
  ProgressMonitor monitor(&board, opts);
  monitor.start();
  monitor.start();  // second start is a no-op, not a second thread
  monitor.stop();
  monitor.start();
  monitor.stop();
}

}  // namespace
