// DIMACS I/O tests: parsing, error handling, round-tripping.
#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.h"
#include "sat/solver.h"

namespace javer::sat {
namespace {

TEST(Dimacs, ParseSimple) {
  std::istringstream in("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  DimacsCnf cnf = read_dimacs(in);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  ASSERT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], Lit::make(0));
  EXPECT_EQ(cnf.clauses[0][1], Lit::make(1, true));
}

TEST(Dimacs, ParseMultipleClausesPerLine) {
  std::istringstream in("p cnf 2 2\n1 0 -1 2 0\n");
  DimacsCnf cnf = read_dimacs(in);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
}

TEST(Dimacs, MissingHeaderThrows) {
  std::istringstream in("1 2 0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, LiteralOutOfRangeThrows) {
  std::istringstream in("p cnf 1 1\n2 0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, UnterminatedClauseThrows) {
  std::istringstream in("p cnf 2 1\n1 2\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RoundTrip) {
  DimacsCnf cnf;
  cnf.num_vars = 4;
  cnf.clauses = {{Lit::make(0), Lit::make(3, true)},
                 {Lit::make(1, true)},
                 {Lit::make(2), Lit::make(1), Lit::make(0, true)}};
  std::ostringstream out;
  write_dimacs(out, cnf);
  std::istringstream in(out.str());
  DimacsCnf back = read_dimacs(in);
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(Dimacs, SolveParsedFormula) {
  std::istringstream in("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n");
  DimacsCnf cnf = read_dimacs(in);
  Solver s;
  for (int v = 0; v < cnf.num_vars; ++v) s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_EQ(s.model_value(Var{0}), kTrue);
  EXPECT_EQ(s.model_value(Var{1}), kTrue);
}

}  // namespace
}  // namespace javer::sat
