// AIGER reader/writer tests: hand-written files, both formats,
// round-trips through ASCII and binary, error handling, 1.9 extensions.
#include <gtest/gtest.h>

#include <sstream>

#include "aig/aiger_io.h"
#include "aig/builder.h"
#include "aig/sim.h"
#include "base/rng.h"
#include "gen/counter.h"
#include "gen/random_design.h"

namespace javer::aig {
namespace {

TEST(AigerRead, ToggleLatchAscii) {
  // A latch that toggles: next = ~latch; bad when latch is 1.
  std::istringstream in(
      "aag 1 0 1 0 0 1\n"
      "2 3\n"
      "2\n");
  Aig aig = read_aiger(in);
  EXPECT_EQ(aig.num_latches(), 1u);
  EXPECT_EQ(aig.num_properties(), 1u);
  // bad literal 2 => property holds-literal is ~latch.
  EXPECT_EQ(aig.properties()[0].lit, ~Lit::make(aig.latches()[0].var));
}

TEST(AigerRead, AndGateAscii) {
  std::istringstream in(
      "aag 3 2 0 1 1\n"
      "2\n"
      "4\n"
      "6\n"
      "6 2 4\n");
  Aig aig = read_aiger(in);
  EXPECT_EQ(aig.num_inputs(), 2u);
  EXPECT_EQ(aig.num_ands(), 1u);
  // Old-style single output becomes a bad-state property by default.
  EXPECT_EQ(aig.num_properties(), 1u);
  Simulator sim(aig);
  sim.eval({}, {true, true});
  EXPECT_FALSE(sim.value(aig.properties()[0].lit));  // bad=and(1,1)=1
  sim.eval({}, {true, false});
  EXPECT_TRUE(sim.value(aig.properties()[0].lit));
}

TEST(AigerRead, OutputsKeptWhenFallbackDisabled) {
  std::istringstream in(
      "aag 1 1 0 1 0\n"
      "2\n"
      "2\n");
  AigerReadOptions opts;
  opts.outputs_as_bad_fallback = false;
  Aig aig = read_aiger(in, opts);
  EXPECT_EQ(aig.num_properties(), 0u);
  EXPECT_EQ(aig.outputs().size(), 1u);
}

TEST(AigerRead, LatchResetValues) {
  std::istringstream in(
      "aag 3 0 3 0 0\n"
      "2 2 0\n"
      "4 4 1\n"
      "6 6 6\n");
  Aig aig = read_aiger(in);
  ASSERT_EQ(aig.num_latches(), 3u);
  EXPECT_EQ(aig.latches()[0].reset, Ternary::False);
  EXPECT_EQ(aig.latches()[1].reset, Ternary::True);
  EXPECT_EQ(aig.latches()[2].reset, Ternary::X);
}

TEST(AigerRead, BadAndConstraintSections) {
  // Header: M I L O A B C
  std::istringstream in(
      "aag 2 2 0 0 0 1 1\n"
      "2\n"
      "4\n"
      "2\n"
      "4\n");
  Aig aig = read_aiger(in);
  EXPECT_EQ(aig.num_properties(), 1u);
  EXPECT_EQ(aig.constraints().size(), 1u);
}

TEST(AigerRead, SymbolTable) {
  std::istringstream in(
      "aag 1 1 0 0 0 1\n"
      "2\n"
      "2\n"
      "b0 my_property\n");
  Aig aig = read_aiger(in);
  ASSERT_EQ(aig.num_properties(), 1u);
  EXPECT_EQ(aig.properties()[0].name, "my_property");
}

TEST(AigerRead, MalformedInputsThrow) {
  {
    std::istringstream in("not_aiger\n");
    EXPECT_THROW(read_aiger(in), std::runtime_error);
  }
  {
    std::istringstream in("aag 1 1 1 0 0\n");  // truncated
    EXPECT_THROW(read_aiger(in), std::runtime_error);
  }
  {
    std::istringstream in("aag 1 0 0 0 0 0 0 1\n");  // justice section
    EXPECT_THROW(read_aiger(in), std::runtime_error);
  }
  {
    // And gate with out-of-range fanin.
    std::istringstream in("aag 1 0 0 0 1\n2 4 6\n");
    EXPECT_THROW(read_aiger(in), std::runtime_error);
  }
}

// Round-trip helper: write then read, then compare semantics by
// simulating both designs on identical stimuli.
void expect_equivalent(const Aig& a, const Aig& b, std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_latches(), b.num_latches());
  ASSERT_EQ(a.num_properties(), b.num_properties());
  javer::Rng rng(seed);
  std::vector<bool> sa = initial_state(a), sb = initial_state(b);
  Simulator sim_a(a), sim_b(b);
  for (int step = 0; step < 30; ++step) {
    std::vector<bool> inputs(a.num_inputs());
    for (auto&& i : inputs) i = rng.chance(1, 2);
    sim_a.eval(sa, inputs);
    sim_b.eval(sb, inputs);
    for (std::size_t p = 0; p < a.num_properties(); ++p) {
      ASSERT_EQ(sim_a.value(a.properties()[p].lit),
                sim_b.value(b.properties()[p].lit))
          << "step " << step << " property " << p;
    }
    sa = sim_a.next_state();
    sb = sim_b.next_state();
    ASSERT_EQ(sa, sb) << "state diverged at step " << step;
  }
}

class AigerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AigerRoundTrip, AsciiPreservesSemantics) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 6;
  spec.num_inputs = 3;
  spec.num_ands = 40;
  spec.num_properties = 4;
  Aig original = gen::make_random_design(spec);

  std::ostringstream out;
  write_aiger(out, original, /*binary=*/false);
  std::istringstream in(out.str());
  Aig back = read_aiger(in);
  expect_equivalent(original, back, GetParam());
}

TEST_P(AigerRoundTrip, BinaryPreservesSemantics) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam() + 1000;
  spec.num_latches = 6;
  spec.num_inputs = 3;
  spec.num_ands = 40;
  spec.num_properties = 4;
  Aig original = gen::make_random_design(spec);

  std::ostringstream out;
  write_aiger(out, original, /*binary=*/true);
  std::istringstream in(out.str());
  Aig back = read_aiger(in);
  expect_equivalent(original, back, GetParam());
}

TEST_P(AigerRoundTrip, BinaryAndAsciiAgree) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam() + 2000;
  Aig original = gen::make_random_design(spec);

  std::ostringstream ascii_out, binary_out;
  write_aiger(ascii_out, original, false);
  write_aiger(binary_out, original, true);
  std::istringstream ascii_in(ascii_out.str()), binary_in(binary_out.str());
  Aig from_ascii = read_aiger(ascii_in);
  Aig from_binary = read_aiger(binary_in);
  expect_equivalent(from_ascii, from_binary, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(AigerRoundTrip, CounterDesign) {
  Aig counter = gen::make_counter({.bits = 6, .buggy = true});
  std::ostringstream out;
  write_aiger(out, counter, /*binary=*/true);
  std::istringstream in(out.str());
  Aig back = read_aiger(in);
  expect_equivalent(counter, back, 99);
  EXPECT_EQ(back.properties()[0].name, "P0: req == 1");
}

}  // namespace
}  // namespace javer::aig
