// Report-layer tests: verdict strings, duration formatting, result
// aggregation and the printed report format.
#include <gtest/gtest.h>

#include <sstream>

#include "aig/builder.h"
#include "mp/report.h"

namespace javer::mp {
namespace {

TEST(Report, VerdictStrings) {
  EXPECT_STREQ(to_string(PropertyVerdict::HoldsGlobally), "holds-globally");
  EXPECT_STREQ(to_string(PropertyVerdict::HoldsLocally), "holds-locally");
  EXPECT_STREQ(to_string(PropertyVerdict::FailsLocally), "fails-locally");
  EXPECT_STREQ(to_string(PropertyVerdict::FailsGlobally), "fails-globally");
  EXPECT_STREQ(to_string(PropertyVerdict::Unknown), "unknown");
}

TEST(Report, DurationFormatting) {
  // Tier boundaries: millisecond precision below 10 ms, two decimals for
  // sub-second values, one decimal for seconds, hours from 3600 s up.
  EXPECT_EQ(format_duration(0.0005), "0.001 s");
  EXPECT_EQ(format_duration(0.009), "0.009 s");
  EXPECT_EQ(format_duration(0.01), "0.01 s");
  EXPECT_EQ(format_duration(0.42), "0.42 s");
  EXPECT_EQ(format_duration(0.5), "0.50 s");
  EXPECT_EQ(format_duration(0.999), "1.00 s");
  EXPECT_EQ(format_duration(1.0), "1.0 s");
  EXPECT_EQ(format_duration(2.26), "2.3 s");
  EXPECT_EQ(format_duration(59.96), "60.0 s");
  EXPECT_EQ(format_duration(3600.0), "1.0 h");
  EXPECT_EQ(format_duration(9000.0), "2.5 h");
}

MultiResult sample_result() {
  MultiResult r;
  r.per_property.resize(5);
  r.per_property[0].verdict = PropertyVerdict::HoldsLocally;
  r.per_property[1].verdict = PropertyVerdict::FailsLocally;
  r.per_property[2].verdict = PropertyVerdict::HoldsGlobally;
  r.per_property[3].verdict = PropertyVerdict::Unknown;
  r.per_property[4].verdict = PropertyVerdict::FailsGlobally;
  r.total_seconds = 1.5;
  return r;
}

TEST(Report, Aggregation) {
  MultiResult r = sample_result();
  EXPECT_EQ(r.count(PropertyVerdict::HoldsLocally), 1u);
  EXPECT_EQ(r.num_proved(), 2u);
  EXPECT_EQ(r.num_failed(), 2u);
  EXPECT_EQ(r.num_unsolved(), 1u);
  EXPECT_EQ(r.debugging_set(), std::vector<std::size_t>{1});
}

TEST(Report, PrintedFormContainsEveryProperty) {
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(2);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  for (int i = 0; i < 5; ++i) {
    aig.add_property(aig::Lit::true_lit(), "prop" + std::to_string(i));
  }
  ts::TransitionSystem ts(aig);

  std::ostringstream out;
  print_report(out, ts, sample_result());
  std::string text = out.str();
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(text.find("prop" + std::to_string(i)), std::string::npos);
  }
  EXPECT_NE(text.find("fails-locally"), std::string::npos);
  EXPECT_NE(text.find("debugging set {P1}"), std::string::npos);
  EXPECT_NE(text.find("2 proved, 2 failed, 1 unsolved"), std::string::npos);
  // No sharded run, no exchange lines.
  EXPECT_EQ(text.find("exchange shard"), std::string::npos);
}

TEST(Report, PrintsPerShardExchangeLines) {
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(2);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  for (int i = 0; i < 5; ++i) {
    aig.add_property(aig::Lit::true_lit(), "prop" + std::to_string(i));
  }
  ts::TransitionSystem ts(aig);

  MultiResult r = sample_result();
  r.exchange_per_shard.resize(2);
  r.exchange_per_shard[0].published = 4;
  r.exchange_per_shard[0].duplicates = 1;
  r.exchange_per_shard[0].delivered = 4;
  r.exchange_per_shard[0].imported = 3;
  r.exchange_per_shard[0].rejected = 1;
  r.exchange_per_shard[1].published = 2;
  r.exchange_per_shard[1].delivered = 2;
  r.exchange_per_shard[1].imported = 1;
  r.exchange_per_shard[1].redundant = 1;

  std::ostringstream out;
  print_report(out, ts, r);
  std::string text = out.str();
  EXPECT_NE(text.find("exchange shard 0: published 4 (+1 dup, 0 filtered), "
                      "delivered 4, imported 3, rejected 1, redundant 0 "
                      "[hit rate 75%]"),
            std::string::npos);
  EXPECT_NE(text.find("exchange shard 1: published 2 (+0 dup, 0 filtered), "
                      "delivered 2, imported 1, rejected 0, redundant 1 "
                      "[hit rate 50%]"),
            std::string::npos);
}

}  // namespace
}  // namespace javer::mp
