// Property-clustering tests (the structure-aware baseline from the
// paper's related work): partition validity, similarity behaviour, and
// clustered joint verification verdicts against the oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_design.h"
#include "gen/synthetic.h"
#include "mp/clustering.h"
#include "ref/explicit_checker.h"

namespace javer::mp {
namespace {

bool is_partition(const std::vector<std::vector<std::size_t>>& clusters,
                  std::size_t k) {
  std::vector<bool> seen(k, false);
  for (const auto& c : clusters) {
    if (c.empty()) return false;
    for (std::size_t p : c) {
      if (p >= k || seen[p]) return false;
      seen[p] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

TEST(Clustering, PartitionCoversAllProperties) {
  gen::SyntheticSpec spec;
  spec.seed = 4;
  spec.rings = 3;
  spec.ring_size = 6;
  spec.ring_props = 18;
  spec.pair_props = 4;
  spec.unreachable_props = 5;
  aig::Aig aig = gen::make_synthetic(spec);
  ts::TransitionSystem ts(aig);
  auto clusters = cluster_properties(ts);
  EXPECT_TRUE(is_partition(clusters, ts.num_properties()));
}

TEST(Clustering, RingPropertiesClusterByRing) {
  // Properties of the same ring share their entire cone; different rings
  // share nothing. Expect exactly `rings` clusters for a pure ring design
  // with no counters in the property cones.
  gen::SyntheticSpec spec;
  spec.seed = 6;
  spec.rings = 3;
  spec.ring_size = 5;
  spec.ring_props = 15;
  spec.pair_props = 0;
  spec.unreachable_props = 0;
  spec.shuffle_properties = false;
  aig::Aig aig = gen::make_synthetic(spec);
  ts::TransitionSystem ts(aig);
  ClusterOptions opts;
  opts.min_similarity = 0.9;
  auto clusters = cluster_properties(ts, opts);
  EXPECT_EQ(clusters.size(), 3u);
  for (const auto& c : clusters) EXPECT_EQ(c.size(), 5u);
}

TEST(Clustering, ThresholdOneSplitsUnrelated) {
  // Pair properties have disjoint cones (own aux/mirror latches +
  // depending on a wcnt bit): with a high threshold each pair property
  // that differs in cone lands alone or with true twins only.
  gen::SyntheticSpec spec;
  spec.seed = 8;
  spec.rings = 0;
  spec.ring_props = 0;
  spec.pair_props = 6;
  spec.unreachable_props = 0;
  aig::Aig aig = gen::make_synthetic(spec);
  ts::TransitionSystem ts(aig);
  ClusterOptions strict;
  strict.min_similarity = 0.99;
  auto clusters = cluster_properties(ts, strict);
  EXPECT_GE(clusters.size(), 2u);

  ClusterOptions loose;
  loose.min_similarity = 0.0;
  auto one = cluster_properties(ts, loose);
  EXPECT_EQ(one.size(), 1u);  // everything merges at threshold 0
}

TEST(Clustering, MaxClusterSizeRespected) {
  aig::Aig aig = gen::make_ring(12);
  ts::TransitionSystem ts(aig);
  ClusterOptions opts;
  opts.min_similarity = 0.0;
  opts.max_cluster_size = 4;
  auto clusters = cluster_properties(ts, opts);
  for (const auto& c : clusters) EXPECT_LE(c.size(), 4u);
  EXPECT_TRUE(is_partition(clusters, ts.num_properties()));
}

class ClusteredJointRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteredJointRandomTest, VerdictsMatchOracle) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_properties = 4;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  ClusteredJointVerifier verifier(ts);
  MultiResult result = verifier.run();
  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    if (expected.fails_globally(p)) {
      EXPECT_EQ(result.per_property[p].verdict,
                PropertyVerdict::FailsGlobally)
          << "seed " << GetParam() << " prop " << p;
    } else {
      EXPECT_EQ(result.per_property[p].verdict,
                PropertyVerdict::HoldsGlobally)
          << "seed " << GetParam() << " prop " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteredJointRandomTest,
                         ::testing::Range<std::uint64_t>(400, 415));

TEST(ClusteredJoint, TimeLimitLeavesRemainderUnknown) {
  gen::SyntheticSpec spec;
  spec.seed = 9;
  spec.wrap_counter_bits = 14;
  spec.rings = 2;
  spec.ring_size = 6;
  spec.ring_props = 12;
  spec.det_fail_props = 1;
  spec.masked_fail_props = 2;  // deep CEXs stall the budget
  aig::Aig aig = gen::make_synthetic(spec);
  ts::TransitionSystem ts(aig);
  ClusteredJointOptions opts;
  opts.total_time_limit = 0.3;
  ClusteredJointVerifier verifier(ts, opts);
  MultiResult result = verifier.run();
  EXPECT_GE(result.num_unsolved(), 1u);
}

}  // namespace
}  // namespace javer::mp
