// PhaseProfiler tests (src/obs/profile): the log2 histogram's bucketing
// and concurrent recording, slot identity and aggregation, the disabled
// sink's null-pointer contract, both export formats (JSON parsed back
// with the shared test reader, folded stacks line-checked), and the
// counting contract that makes the profile an audited decomposition of a
// run rather than a sampling estimate: per-phase SAT-query sample counts
// reconcile *exactly* with the summed Ic3Stats query counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "ic3/ic3.h"
#include "mp/sched/scheduler.h"
#include "mp/shard/sharded_scheduler.h"
#include "obs/profile.h"
#include "test_util_json.h"
#include "ts/transition_system.h"

namespace javer {
namespace {

using testjson::Json;
using testjson::parse_json_or_die;

// --- LatencyHisto -----------------------------------------------------------

TEST(LatencyHisto, BucketIndexIsBitWidthWithSaturation) {
  // Bucket i holds samples of bit_width i: 0 -> 0, 1 -> 1, 2..3 -> 2,
  // 4..7 -> 3, ...; the last bucket absorbs everything wider.
  EXPECT_EQ(obs::LatencyHisto::bucket_index(0), 0);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(1), 1);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(2), 2);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(3), 2);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(4), 3);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(7), 3);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(8), 4);
  EXPECT_EQ(obs::LatencyHisto::bucket_index(~std::uint64_t{0}),
            obs::LatencyHisto::kBuckets - 1);

  // Upper bounds are inclusive and consistent with the index: a value
  // lands in the first bucket whose upper bound admits it.
  EXPECT_EQ(obs::LatencyHisto::bucket_upper_us(0), 0u);
  EXPECT_EQ(obs::LatencyHisto::bucket_upper_us(1), 1u);
  EXPECT_EQ(obs::LatencyHisto::bucket_upper_us(2), 3u);
  EXPECT_EQ(obs::LatencyHisto::bucket_upper_us(3), 7u);
  for (std::uint64_t us : {0u, 1u, 2u, 3u, 5u, 100u, 4096u}) {
    int b = obs::LatencyHisto::bucket_index(us);
    EXPECT_LE(us, obs::LatencyHisto::bucket_upper_us(b)) << us;
    if (b > 0) {
      EXPECT_GT(us, obs::LatencyHisto::bucket_upper_us(b - 1)) << us;
    }
  }
}

TEST(LatencyHisto, RecordAccumulatesCountTotalMaxAndBuckets) {
  obs::LatencyHisto h;
  for (std::uint64_t us : {0u, 1u, 1u, 3u, 900u}) h.record(us);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.total_us(), 905u);
  EXPECT_EQ(h.max_us(), 900u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // the 0us sample
  EXPECT_EQ(h.bucket_count(1), 2u);  // the two 1us samples
  EXPECT_EQ(h.bucket_count(2), 1u);  // 3us
  EXPECT_EQ(h.bucket_count(obs::LatencyHisto::bucket_index(900)), 1u);
}

TEST(LatencyHisto, ConcurrentRecordersLoseNothing) {
  // The recording path is relaxed atomics + a CAS max; hammer it from
  // several threads and check the totals are exact.
  obs::LatencyHisto h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.max_us(), kThreads * kPerThread - 1);
  std::uint64_t bucket_sum = 0;
  for (int b = 0; b < obs::LatencyHisto::kBuckets; ++b) {
    bucket_sum += h.bucket_count(b);
  }
  EXPECT_EQ(bucket_sum, kThreads * kPerThread);
}

// --- PhaseProfiler / ProfileSink -------------------------------------------

TEST(PhaseProfiler, SlotsAreStableIdentitiesAndAggregateByPhase) {
  obs::PhaseProfiler profiler;
  obs::LatencyHisto* a = profiler.slot("ic3/mic", 0, 7);
  EXPECT_EQ(profiler.slot("ic3/mic", 0, 7), a);       // same key, same histo
  EXPECT_NE(profiler.slot("ic3/mic", 1, 7), a);       // different shard
  EXPECT_NE(profiler.slot("ic3/mic", 0, 8), a);       // different property
  EXPECT_NE(profiler.slot("ic3/push", 0, 7), a);      // different phase

  a->record(10);
  profiler.slot("ic3/mic", 1, 7)->record(20);
  profiler.slot("ic3/push", 0, 7)->record(5);
  EXPECT_EQ(profiler.phase_count("ic3/mic"), 2u);
  EXPECT_EQ(profiler.phase_total_us("ic3/mic"), 30u);
  EXPECT_EQ(profiler.phase_count("ic3/push"), 1u);
  EXPECT_EQ(profiler.phase_count("ic3/never"), 0u);
  EXPECT_EQ(profiler.slots().size(), 4u);
}

TEST(ProfileSink, DisabledSinkHandsOutNullAndTimerSkipsTheClock) {
  obs::ProfileSink off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.slot("ic3/mic"), nullptr);
  EXPECT_EQ(off.with_shard(3).with_property(9).slot("x/y"), nullptr);
  {
    obs::ProfileTimer timer(nullptr);  // must be a free no-op
  }

  obs::PhaseProfiler profiler;
  obs::ProfileSink on(&profiler, /*shard=*/2, /*property=*/5);
  ASSERT_TRUE(on.enabled());
  {
    obs::ProfileTimer timer(on.slot("test/op"));
  }
  EXPECT_EQ(profiler.phase_count("test/op"), 1u);
  std::vector<obs::PhaseProfiler::SlotView> views = profiler.slots();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].shard, 2);
  EXPECT_EQ(views[0].property, 5);
}

TEST(PhaseProfiler, JsonAndFoldedExportsCarryTheSlotTable) {
  obs::PhaseProfiler profiler;
  profiler.slot("test/alpha", 2, 7)->record(5);
  profiler.slot("test/alpha", 2, 7)->record(0);
  obs::LatencyHisto* untagged = profiler.slot("test/beta");
  untagged->record(100);
  profiler.slot("test/empty", 1, 1);  // never recorded: omitted

  std::ostringstream json;
  profiler.write_json(json);
  Json doc = parse_json_or_die(json.str());
  ASSERT_TRUE(doc.has("phases"));
  ASSERT_EQ(doc.at("phases").array.size(), 2u);  // empty slot dropped

  const Json& alpha = doc.at("phases").array[0];
  EXPECT_EQ(alpha.at("phase").string, "test/alpha");
  EXPECT_DOUBLE_EQ(alpha.at("shard").number, 2.0);
  EXPECT_DOUBLE_EQ(alpha.at("property").number, 7.0);
  EXPECT_DOUBLE_EQ(alpha.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(alpha.at("total_us").number, 5.0);
  EXPECT_DOUBLE_EQ(alpha.at("max_us").number, 5.0);
  ASSERT_EQ(alpha.at("buckets").array.size(), 2u);  // 0us and 5us buckets
  EXPECT_DOUBLE_EQ(alpha.at("buckets").array[0].at("le_us").number, 0.0);
  EXPECT_DOUBLE_EQ(alpha.at("buckets").array[1].at("le_us").number, 7.0);
  EXPECT_DOUBLE_EQ(alpha.at("buckets").array[1].at("count").number, 1.0);

  const Json& beta = doc.at("phases").array[1];
  EXPECT_EQ(beta.at("phase").string, "test/beta");
  EXPECT_FALSE(beta.has("shard"));     // untagged keys are omitted
  EXPECT_FALSE(beta.has("property"));

  std::ostringstream folded;
  profiler.write_folded(folded);
  EXPECT_EQ(folded.str(),
            "javer;test/beta 100\n"
            "javer;shard2;P7;test/alpha 5\n");
}

// --- end-to-end: the counting contract -------------------------------------

gen::SyntheticSpec small_multi_cone() {
  gen::SyntheticSpec spec;
  spec.seed = 181;
  spec.wrap_counter_bits = 8;
  spec.rings = 2;
  spec.ring_size = 4;
  spec.ring_props = 4;
  spec.pair_props = 2;
  spec.unreachable_props = 2;
  spec.det_fail_props = 1;
  spec.input_fail_props = 1;
  return spec;
}

template <typename Field>
std::uint64_t summed(const mp::MultiResult& r, Field field) {
  std::uint64_t total = 0;
  for (const mp::PropertyResult& pr : r.per_property) {
    total += pr.engine_stats.*field;
  }
  return total;
}

// Sample count of `phase` over every slot tagged with `property`
// (any shard).
std::uint64_t slot_count(const obs::PhaseProfiler& profiler,
                         std::string_view phase, long long property) {
  std::uint64_t total = 0;
  for (const obs::PhaseProfiler::SlotView& v : profiler.slots()) {
    if (v.phase == phase && v.property == property) {
      total += v.histo->count();
    }
  }
  return total;
}

// The acceptance contract: every profiled SAT-query phase reconciles
// exactly with the engines' own query counters. Requires zero spurious
// restarts — a discarded engine's samples stay in the profile but its
// stats are replaced — so callers run with strict lifting and we assert
// the precondition rather than assume it.
void expect_profile_reconciles(const obs::PhaseProfiler& profiler,
                               const mp::MultiResult& r) {
  std::uint64_t restarts = 0;
  for (const mp::PropertyResult& pr : r.per_property) {
    restarts += static_cast<std::uint64_t>(pr.spurious_restarts);
  }
  ASSERT_EQ(restarts, 0u) << "strict lifting should preclude restarts";

  // Consecution solves happen at the obligation sites and inside frame
  // push; both wrap the same counted call.
  EXPECT_EQ(profiler.phase_count("ic3/consecution") +
                profiler.phase_count("ic3/push"),
            summed(r, &ic3::Ic3Stats::consecution_queries));
  EXPECT_EQ(profiler.phase_count("ic3/mic"),
            summed(r, &ic3::Ic3Stats::mic_queries));
  EXPECT_EQ(profiler.phase_count("ic3/bad_query"),
            summed(r, &ic3::Ic3Stats::bad_queries));
  EXPECT_EQ(profiler.phase_count("ic3/lift"),
            summed(r, &ic3::Ic3Stats::lift_queries));
}

TEST(ProfileEndToEnd, HybridRunReconcilesPhaseCountsWithEngineStats) {
  aig::Aig aig = gen::make_synthetic(small_multi_cone());
  ts::TransitionSystem ts(aig);

  obs::PhaseProfiler profiler;
  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::HybridBmcIc3;
  so.ic3_slice_seconds = 0.05;
  so.bmc_depth_per_sweep = 4;
  so.bmc_max_depth = 32;
  so.engine.lifting_respects_constraints = true;  // no spurious restarts
  so.engine.profiler = &profiler;
  mp::MultiResult r = mp::sched::Scheduler(ts, so).run();

  expect_profile_reconciles(profiler, r);

  // The same contract holds per property: each proved property's mic /
  // bad / lift counts match its own engine stats slot-for-slot.
  for (std::size_t p = 0; p < r.per_property.size(); ++p) {
    const ic3::Ic3Stats& st = r.per_property[p].engine_stats;
    long long prop = static_cast<long long>(p);
    EXPECT_EQ(slot_count(profiler, "ic3/mic", prop), st.mic_queries) << p;
    EXPECT_EQ(slot_count(profiler, "ic3/bad_query", prop), st.bad_queries)
        << p;
    EXPECT_EQ(slot_count(profiler, "ic3/lift", prop), st.lift_queries) << p;
    EXPECT_EQ(slot_count(profiler, "ic3/consecution", prop) +
                  slot_count(profiler, "ic3/push", prop),
              st.consecution_queries)
        << p;
  }

  // The hybrid dispatch ran BMC sweeps over the shared unrolling, and
  // the template path replayed rather than re-encoded.
  EXPECT_GT(profiler.phase_count("bmc/solve"), 0u);
  EXPECT_GT(profiler.phase_count("cnf/replay"), 0u);

  // A profiled run exports a parseable profile whose per-slot counts sum
  // to the phase totals.
  std::ostringstream json;
  profiler.write_json(json);
  Json doc = parse_json_or_die(json.str());
  std::uint64_t exported_mic = 0;
  for (const Json& slot : doc.at("phases").array) {
    if (slot.at("phase").string == "ic3/mic") {
      exported_mic += static_cast<std::uint64_t>(slot.at("count").number);
    }
  }
  EXPECT_EQ(exported_mic, profiler.phase_count("ic3/mic"));
}

TEST(ProfileEndToEnd, ShardedRunTagsSlotsPerShardAndReconciles) {
  aig::Aig aig = gen::make_synthetic(small_multi_cone());
  ts::TransitionSystem ts(aig);

  obs::PhaseProfiler profiler;
  mp::shard::ShardedOptions so;
  so.base.proof_mode = mp::sched::ProofMode::Local;
  so.base.dispatch = mp::sched::DispatchPolicy::HybridBmcIc3;
  so.base.ic3_slice_seconds = 0.05;
  so.base.bmc_depth_per_sweep = 4;
  so.base.bmc_max_depth = 32;
  so.base.engine.lifting_respects_constraints = true;
  so.base.engine.profiler = &profiler;
  so.clustering.min_similarity = 0.3;
  so.clustering.max_cluster_size = 2;
  mp::shard::ShardedScheduler sched(ts, so);
  mp::MultiResult r = sched.run();
  ASSERT_GE(sched.num_shards(), 2u);

  expect_profile_reconciles(profiler, r);

  // Every IC3 slot carries a valid shard tag.
  bool saw_ic3_slot = false;
  for (const obs::PhaseProfiler::SlotView& v : profiler.slots()) {
    if (v.phase.rfind("ic3/", 0) == 0 && v.histo->count() > 0) {
      saw_ic3_slot = true;
      EXPECT_GE(v.shard, 0) << v.phase;
      EXPECT_LT(v.shard, static_cast<int>(sched.num_shards())) << v.phase;
      EXPECT_GE(v.property, 0) << v.phase;
    }
  }
  EXPECT_TRUE(saw_ic3_slot);
}

TEST(ProfileEndToEnd, UnprofiledRunLeavesABystanderProfilerEmpty) {
  aig::Aig aig = gen::make_synthetic(small_multi_cone());
  ts::TransitionSystem ts(aig);

  obs::PhaseProfiler bystander;
  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::HybridBmcIc3;
  so.ic3_slice_seconds = 0.05;
  so.bmc_depth_per_sweep = 4;
  so.bmc_max_depth = 32;
  mp::MultiResult r = mp::sched::Scheduler(ts, so).run();
  EXPECT_GT(r.per_property.size(), 0u);
  EXPECT_TRUE(bystander.slots().empty());

  std::ostringstream json;
  bystander.write_json(json);
  Json doc = parse_json_or_die(json.str());
  EXPECT_TRUE(doc.at("phases").array.empty());
  std::ostringstream folded;
  bystander.write_folded(folded);
  EXPECT_TRUE(folded.str().empty());
}

}  // namespace
}  // namespace javer
