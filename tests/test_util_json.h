// A minimal JSON reader shared by the observability tests
// (objects/arrays/strings/numbers/bools) — just enough to parse back
// what the obs exporters (write_chrome_trace / write_jsonl /
// PhaseProfiler::write_json) emit; any malformed output fails the parse
// (and with it the test).
#ifndef JAVER_TESTS_TEST_UTIL_JSON_H
#define JAVER_TESTS_TEST_UTIL_JSON_H

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace javer::testjson {

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(Json& out) {
    pos_ = 0;
    return value(out) && (skip_ws(), pos_ == text_.size());
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }
  bool literal(const char* lit) {
    std::size_t n = std::string_view(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = Json::Kind::String;
      return string(out.string);
    }
    if (c == 't' || c == 'f') {
      out.kind = Json::Kind::Bool;
      out.boolean = (c == 't');
      return literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }
  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    pos_++;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          // Control characters only in our escaper; keep the code unit.
          out += '?';
          pos_ += 4;
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= text_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool number(Json& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return false;
    out.kind = Json::Kind::Number;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool array(Json& out) {
    out.kind = Json::Kind::Array;
    pos_++;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      Json elem;
      if (!value(elem)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }
  bool object(Json& out) {
    out.kind = Json::Kind::Object;
    pos_++;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      pos_++;
      Json val;
      if (!value(val)) return false;
      out.object.emplace(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Json parse_json_or_die(const std::string& text) {
  Json out;
  JsonReader reader(text);
  EXPECT_TRUE(reader.parse(out)) << "unparseable JSON: " << text;
  return out;
}

}  // namespace javer::testjson

#endif  // JAVER_TESTS_TEST_UTIL_JSON_H
