// Encode-reuse subsystem tests: cnf::CnfTemplate instantiation
// equisatisfiability against a direct Tseitin run (fuzzed via ref_dpll),
// TemplateCache sharing, monolithic-vs-per-frame IC3 verdict and
// certified-invariant equivalence on the random-design families, and the
// monolithic solver's activation-literal hygiene (retired activations and
// frame tags never leak across frames).
#include <gtest/gtest.h>

#include <memory>

#include "aig/builder.h"
#include "base/rng.h"
#include "cnf/template.h"
#include "cnf/tseitin.h"
#include "gen/random_design.h"
#include "ic3/frames.h"
#include "ic3/ic3.h"
#include "ref/explicit_checker.h"
#include "sat/cnf.h"
#include "sat/ref_dpll.h"
#include "sat/solver.h"
#include "test_util.h"

namespace javer {
namespace {

// Encoder sink writing into a plain Cnf (the direct-Tseitin reference for
// the equisat fuzz below).
class CnfSink : public sat::ClauseSink {
 public:
  explicit CnfSink(sat::Cnf& cnf) : cnf_(cnf) {}
  sat::Var new_var() override { return cnf_.new_var(); }
  bool add_clause(std::span<const sat::Lit> lits) override {
    cnf_.add_clause(lits);
    return true;
  }

 private:
  sat::Cnf& cnf_;
};

// A probe fixes a handful of interface points (latch values, input
// values, next-state values, property verdicts) as unit clauses; the
// template encoding and the direct encoding must agree on satisfiability
// under every probe.
struct Probe {
  std::vector<std::pair<std::size_t, bool>> latches;
  std::vector<std::pair<std::size_t, bool>> nexts;
  std::vector<std::pair<std::size_t, bool>> props;
};

bool probe_sat(const std::vector<std::vector<sat::Lit>>& clauses,
               int num_vars, const std::vector<sat::Lit>& latch_lits,
               const std::vector<sat::Lit>& next_lits,
               const std::vector<sat::Lit>& prop_lits, const Probe& probe) {
  std::vector<std::vector<sat::Lit>> all = clauses;
  for (auto [i, v] : probe.latches) all.push_back({latch_lits[i] ^ !v});
  for (auto [i, v] : probe.nexts) all.push_back({next_lits[i] ^ !v});
  for (auto [i, v] : probe.props) all.push_back({prop_lits[i] ^ !v});
  return sat::ref_dpll_solve(num_vars, all).has_value();
}

TEST(CnfTemplate, EquisatVsDirectTseitinFuzz) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    gen::RandomDesignSpec spec;
    spec.seed = seed;
    spec.num_latches = 3;
    spec.num_inputs = 2;
    spec.num_ands = 12;
    spec.num_properties = 2;
    aig::Aig aig = gen::make_random_design(spec);
    ts::TransitionSystem ts(aig);

    // Direct reference encoding: the full one-step cone into a Cnf.
    sat::Cnf direct;
    CnfSink sink(direct);
    cnf::Encoder enc(aig, sink);
    cnf::Encoder::Frame frame = enc.make_frame();
    std::vector<sat::Lit> d_latch, d_next, d_prop;
    for (const aig::Latch& l : aig.latches()) {
      d_latch.push_back(enc.lit(frame, aig::Lit::make(l.var)));
    }
    for (aig::Var v : aig.inputs()) enc.lit(frame, aig::Lit::make(v));
    for (const aig::Latch& l : aig.latches()) {
      d_next.push_back(enc.lit(frame, l.next));
    }
    for (std::size_t p = 0; p < ts.num_properties(); ++p) {
      d_prop.push_back(enc.lit(frame, ts.property_lit(p)));
    }

    for (bool simplify : {false, true}) {
      cnf::CnfTemplate::Spec tspec;
      tspec.props = {0, 1};
      tspec.simplify = simplify;
      cnf::CnfTemplate tmpl(ts, tspec);

      Rng rng(seed * 77 + (simplify ? 1 : 0));
      for (int trial = 0; trial < 8; ++trial) {
        Probe probe;
        for (std::size_t i = 0; i < aig.num_latches(); ++i) {
          if (rng.chance(1, 2)) probe.latches.push_back({i, rng.chance(1, 2)});
        }
        for (std::size_t i = 0; i < aig.num_latches(); ++i) {
          if (rng.chance(1, 3)) probe.nexts.push_back({i, rng.chance(1, 2)});
        }
        for (std::size_t p = 0; p < ts.num_properties(); ++p) {
          if (rng.chance(1, 2)) probe.props.push_back({p, rng.chance(1, 2)});
        }

        bool want = probe_sat(direct.clauses, direct.num_vars, d_latch,
                              d_next, d_prop, probe);
        std::vector<sat::Lit> t_prop{tmpl.property_lit(0),
                                     tmpl.property_lit(1)};
        bool got = probe_sat(tmpl.clauses(), tmpl.num_vars(),
                             tmpl.latch_lits(), tmpl.next_lits(), t_prop,
                             probe);
        ASSERT_EQ(got, want) << "seed " << seed << " simplify " << simplify
                             << " trial " << trial;

        // And the solver instantiation agrees too (assumption form).
        sat::Solver solver;
        tmpl.instantiate(solver);
        std::vector<sat::Lit> assumptions;
        for (auto [i, v] : probe.latches) {
          assumptions.push_back(tmpl.latch_lits()[i] ^ !v);
        }
        for (auto [i, v] : probe.nexts) {
          assumptions.push_back(tmpl.next_lits()[i] ^ !v);
        }
        for (auto [i, v] : probe.props) {
          assumptions.push_back(tmpl.property_lit(i) ^ !v);
        }
        ASSERT_EQ(solver.solve(assumptions),
                  want ? sat::SolveResult::Sat : sat::SolveResult::Unsat)
            << "seed " << seed << " simplify " << simplify << " trial "
            << trial;
      }
    }
  }
}

TEST(CnfTemplate, CacheSharesOneBuildPerSpec) {
  gen::RandomDesignSpec spec;
  spec.seed = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  cnf::TemplateCache cache(ts);

  bool built = false;
  auto a = cache.get_or_build({{0, 1}, false}, &built);
  EXPECT_TRUE(built);
  // Same property set in any order, deduplicated: a hit.
  auto b = cache.get_or_build({{1, 0, 1}, false}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(a.get(), b.get());
  // Different simplify flag: a distinct template.
  auto c = cache.get_or_build({{0, 1}, true}, &built);
  EXPECT_TRUE(built);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CnfTemplate, DistinctDesignsSharingOneCacheGetDistinctTemplates) {
  // Regression (cache-keying soundness): the cache key folds the design
  // fingerprint, so a cache handed to a run that checks a *different*
  // transition system (JointAggregate builds a fresh aggregate TS per
  // iteration) can never replay the first design's template for it.
  gen::RandomDesignSpec spec_a;
  spec_a.seed = 61;
  gen::RandomDesignSpec spec_b;
  spec_b.seed = 62;
  aig::Aig a = gen::make_random_design(spec_a);
  aig::Aig b = gen::make_random_design(spec_b);
  ts::TransitionSystem ts_a(a);
  ts::TransitionSystem ts_b(b);
  ASSERT_NE(aig::fingerprint(a), aig::fingerprint(b));

  cnf::TemplateCache cache(ts_a);
  bool built = false;
  auto ta = cache.get_or_build({{0, 1}, false}, &built);
  EXPECT_TRUE(built);
  auto tb = cache.get_or_build(ts_b, {{0, 1}, false}, &built);
  EXPECT_TRUE(built);  // a fresh build, not a (wrong) hit
  EXPECT_NE(ta.get(), tb.get());
  // The foreign design's entry is exactly what a direct build produces.
  cnf::CnfTemplate direct(ts_b, {{0, 1}, false});
  EXPECT_EQ(tb->clauses(), direct.clauses());
  EXPECT_EQ(tb->num_vars(), direct.num_vars());
  // Both designs' entries keep hitting independently.
  auto ta2 = cache.get_or_build(ts_a, {{0, 1}, false}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(ta.get(), ta2.get());
  auto tb2 = cache.get_or_build(ts_b, {{0, 1}, false}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(tb.get(), tb2.get());
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(CnfTemplate, EngineWithForeignCacheMatchesPrivateEncoding) {
  // An Ic3 engine handed a cache built over another design must produce
  // the same verdicts and certificates as one with no shared cache.
  for (std::uint64_t seed = 71; seed <= 76; ++seed) {
    gen::RandomDesignSpec spec;
    spec.seed = seed;
    spec.num_latches = 4;
    spec.num_inputs = 2;
    spec.num_ands = 18;
    spec.num_properties = 2;
    aig::Aig a = gen::make_random_design(spec);
    spec.seed = seed + 100;
    aig::Aig b = gen::make_random_design(spec);
    ts::TransitionSystem ts_a(a);
    ts::TransitionSystem ts_b(b);
    cnf::TemplateCache cache(ts_a);

    for (std::size_t p = 0; p < ts_b.num_properties(); ++p) {
      ic3::Ic3Options with_cache;
      with_cache.time_limit_seconds = 30.0;
      with_cache.template_cache = &cache;
      ic3::Ic3Result shared = ic3::Ic3(ts_b, p, with_cache).run();

      ic3::Ic3Options without;
      without.time_limit_seconds = 30.0;
      ic3::Ic3Result private_run = ic3::Ic3(ts_b, p, without).run();

      ASSERT_EQ(shared.status, private_run.status)
          << "seed " << seed << " P" << p;
      if (shared.status == CheckStatus::Holds) {
        testutil::expect_valid_invariant(ts_b, p, {}, shared.invariant);
      }
    }
  }
}

TEST(CnfTemplate, InstantiateRequiresFreshSolver) {
  gen::RandomDesignSpec spec;
  spec.seed = 4;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  cnf::CnfTemplate tmpl(ts, {{0}, false});
  sat::Solver dirty;
  dirty.new_var();
  EXPECT_THROW(tmpl.instantiate(dirty), std::logic_error);
}

// --- monolithic vs per-frame equivalence ------------------------------------

class SolverModeRandomTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SolverModeRandomTest, GlobalVerdictsAndCertificatesAgree) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 20;
  spec.num_properties = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    ic3::Ic3Result per_frame, mono;
    {
      ic3::Ic3Options opts;
      opts.time_limit_seconds = 30.0;
      opts.solver_mode = ic3::Ic3SolverMode::PerFrame;
      opts.use_template = false;
      per_frame = ic3::Ic3(ts, p, opts).run();
    }
    {
      ic3::Ic3Options opts;
      opts.time_limit_seconds = 30.0;
      opts.solver_mode = ic3::Ic3SolverMode::Monolithic;
      opts.use_template = true;
      mono = ic3::Ic3(ts, p, opts).run();
    }
    ASSERT_EQ(per_frame.status, mono.status)
        << "seed " << GetParam() << " prop " << p;
    ASSERT_EQ(mono.status, expected.fails_globally(p) ? CheckStatus::Fails
                                                      : CheckStatus::Holds)
        << "seed " << GetParam() << " prop " << p;
    if (mono.status == CheckStatus::Holds) {
      testutil::expect_valid_invariant(ts, p, {}, per_frame.invariant);
      testutil::expect_valid_invariant(ts, p, {}, mono.invariant);
    } else {
      EXPECT_TRUE(ts::is_global_cex(ts, mono.cex, p))
          << "seed " << GetParam() << " prop " << p;
    }
  }
}

TEST_P(SolverModeRandomTest, LocalStrictLiftingVerdictsAgree) {
  // Strict lifting keeps local-proof runs deterministic in outcome (no
  // spurious-CEX divergence between backends), so verdicts and
  // certificates must agree exactly.
  gen::RandomDesignSpec spec;
  spec.seed = GetParam() + 500;
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 20;
  spec.num_properties = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    std::vector<std::size_t> assumed;
    for (std::size_t j = 0; j < ts.num_properties(); ++j) {
      if (j != p) assumed.push_back(j);
    }
    auto run_mode = [&](ic3::Ic3SolverMode mode, bool tmpl) {
      ic3::Ic3Options opts;
      opts.assumed = assumed;
      opts.lifting_respects_constraints = true;
      opts.time_limit_seconds = 30.0;
      opts.solver_mode = mode;
      opts.use_template = tmpl;
      return ic3::Ic3(ts, p, opts).run();
    };
    ic3::Ic3Result per_frame = run_mode(ic3::Ic3SolverMode::PerFrame, false);
    ic3::Ic3Result mono = run_mode(ic3::Ic3SolverMode::Monolithic, true);
    ASSERT_EQ(per_frame.status, mono.status)
        << "seed " << GetParam() + 500 << " prop " << p;
    if (mono.status == CheckStatus::Holds) {
      testutil::expect_valid_invariant(ts, p, assumed, per_frame.invariant);
      testutil::expect_valid_invariant(ts, p, assumed, mono.invariant);
    } else if (mono.status == CheckStatus::Fails) {
      EXPECT_TRUE(ts::is_local_cex(ts, mono.cex, p, assumed))
          << "seed " << GetParam() + 500 << " prop " << p;
    }
  }
}

TEST_P(SolverModeRandomTest, ResumedMonolithicMatchesOneShot) {
  // The sliced engine keeps its monolithic context across suspends; the
  // final verdict and certificate must match a one-shot run.
  gen::RandomDesignSpec spec;
  spec.seed = GetParam() + 900;
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 24;
  spec.num_properties = 2;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    ic3::Ic3Options opts;
    opts.time_limit_seconds = 30.0;
    opts.solver_mode = ic3::Ic3SolverMode::Monolithic;
    ic3::Ic3Result one_shot = ic3::Ic3(ts, p, opts).run();

    ic3::Ic3 sliced(ts, p, opts);
    ic3::Ic3Budget slice;
    slice.conflict_slice = 5;  // tiny: force many suspend/resume cycles
    ic3::Ic3Result r;
    for (int rounds = 0; rounds < 10000; ++rounds) {
      r = sliced.run(slice);
      if (r.status != CheckStatus::Unknown || !r.resumable) break;
    }
    ASSERT_EQ(r.status, one_shot.status) << "seed " << GetParam() + 900
                                         << " prop " << p;
    if (r.status == CheckStatus::Holds) {
      testutil::expect_valid_invariant(ts, p, {}, r.invariant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverModeRandomTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- monolithic frame solver hygiene ----------------------------------------

// Fixture: 3-bit counter, P0: cnt != 5 (target), P1: cnt != 2 (assumable).
struct CounterFixture {
  CounterFixture() {
    aig::Builder b(aig);
    cnt = b.latch_word(3, Ternary::False, "cnt");
    b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
    aig.add_property(~b.eq_const(cnt, 5), "ne5");
    aig.add_property(~b.eq_const(cnt, 2), "ne2");
    ts = std::make_unique<ts::TransitionSystem>(aig);
  }
  static ts::Cube state_cube(int value) {
    ts::Cube c;
    for (int b = 0; b < 3; ++b) {
      c.push_back(ts::StateLit{b, ((value >> b) & 1) != 0});
    }
    return c;
  }
  aig::Aig aig;
  aig::Word cnt;
  std::unique_ptr<ts::TransitionSystem> ts;
};

TEST(MonolithicFrameSolver, FrameTagsDoNotLeakAcrossFrames) {
  CounterFixture fx;
  ic3::MonolithicFrameSolver::Config config;
  config.target_prop = 0;
  ic3::MonolithicFrameSolver ms(*fx.ts, config);
  ms.ensure_frame(3);

  // Block "cnt==4" at delta level 2: active for frames <= 2 (solver k of
  // the per-frame topology holds levels >= k), invisible at frame 3.
  ts::Cube four = CounterFixture::state_cube(4);
  ms.add_blocking_clause(four, 2);
  // Consecution of cnt==5 asks for a predecessor of 5, i.e. cnt==4, in
  // the frame. Blocked at frames 1 and 2, still reachable at frame 3.
  ts::Cube five = CounterFixture::state_cube(5);
  EXPECT_EQ(ms.query_consecution(1, five, true, nullptr),
            sat::SolveResult::Unsat);
  EXPECT_EQ(ms.query_consecution(2, five, true, nullptr),
            sat::SolveResult::Unsat);
  EXPECT_EQ(ms.query_consecution(3, five, true, nullptr),
            sat::SolveResult::Sat);
  // F_inf-relative consecution must not see frame-tagged clauses at all.
  EXPECT_EQ(ms.query_consecution(ic3::MonolithicFrameSolver::kFrameInf,
                                 five, true, nullptr),
            sat::SolveResult::Sat);
}

TEST(MonolithicFrameSolver, RetiredActivationsNeverReappear) {
  CounterFixture fx;
  ic3::MonolithicFrameSolver::Config config;
  config.target_prop = 0;
  ic3::MonolithicFrameSolver ms(*fx.ts, config);
  ms.ensure_frame(1);

  ts::Cube five = CounterFixture::state_cube(5);
  ts::Cube two = CounterFixture::state_cube(2);
  // Baseline answers from a fresh context.
  sat::SolveResult five_at_1 = ms.query_consecution(1, five, true, nullptr);
  sat::SolveResult two_at_1 = ms.query_consecution(1, two, true, nullptr);

  // Churn: hundreds of temporary activation literals retired via
  // negation clauses and lift refutation clauses.
  for (int i = 0; i < 300; ++i) {
    ts::Cube c = CounterFixture::state_cube(i % 8);
    ms.query_consecution(1, c, /*add_negation=*/true, nullptr);
    ms.lift_bad(std::vector<bool>{true, false, true},
                std::vector<bool>{});
  }
  EXPECT_GE(ms.retired_activations(), 600);

  // The retired clauses (¬cube under a dead activation) must not bleed
  // into later queries: answers are unchanged, and UNSAT cores still map
  // exclusively to cube literals (indices into the queried cube).
  EXPECT_EQ(ms.query_consecution(1, five, true, nullptr), five_at_1);
  EXPECT_EQ(ms.query_consecution(1, two, true, nullptr), two_at_1);
  std::vector<std::size_t> core;
  sat::SolveResult r = ms.query_consecution(1, five, true, &core);
  ASSERT_EQ(r, five_at_1);
  if (r == sat::SolveResult::Unsat) {
    for (std::size_t idx : core) EXPECT_LT(idx, five.size());
    // The core is sufficient: re-querying the shrunk cube stays UNSAT.
    if (!core.empty()) {
      ts::Cube shrunk;
      for (std::size_t idx : core) shrunk.push_back(five[idx]);
      ts::sort_cube(shrunk);
      EXPECT_EQ(ms.query_consecution(1, shrunk, true, nullptr),
                sat::SolveResult::Unsat);
    }
  }
}

TEST(MonolithicFrameSolver, InitUnitsOnlyAtFrameZero) {
  CounterFixture fx;
  ic3::MonolithicFrameSolver::Config config;
  config.target_prop = 0;
  ic3::MonolithicFrameSolver ms(*fx.ts, config);
  ms.ensure_frame(1);
  // Frame 0 is exactly I (cnt==0): the initial state satisfies P0.
  EXPECT_EQ(ms.query_bad(0), sat::SolveResult::Unsat);
  // Frame 1 is unconstrained so far: some state violates P0.
  EXPECT_EQ(ms.query_bad(1), sat::SolveResult::Sat);
  auto state = ms.model_state();
  int v = state[0] + 2 * state[1] + 4 * state[2];
  EXPECT_EQ(v, 5);
}

}  // namespace
}  // namespace javer
