// Stress and robustness tests: the SAT solver's restart/reduceDB paths
// under load, IC3 under aggressive solver rebuilding, and randomized ETF
// assignments — all cross-checked where an oracle exists.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "gen/random_design.h"
#include "ic3/ic3.h"
#include "mp/separate_verifier.h"
#include "ref/explicit_checker.h"
#include "sat/solver.h"
#include "ts/trace.h"

namespace javer {
namespace {

// Pigeonhole n+1 into n: UNSAT instances that force conflict analysis,
// clause learning, reduceDB and restarts.
void add_pigeonhole(sat::Solver& s, int holes) {
  int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> p(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(sat::Lit::make(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        s.add_binary(sat::Lit::make(p[i][h], true),
                     sat::Lit::make(p[j][h], true));
      }
    }
  }
}

TEST(SatStress, PigeonholeUnsatUpTo7) {
  for (int holes = 3; holes <= 7; ++holes) {
    sat::Solver s;
    add_pigeonhole(s, holes);
    EXPECT_EQ(s.solve(), sat::SolveResult::Unsat) << "holes " << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(SatStress, LargeSatisfiableRandomInstances) {
  // Below the phase transition: satisfiable with high probability; the
  // model is verified directly, no oracle needed.
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    int num_vars = 150;
    int num_clauses = static_cast<int>(num_vars * 3.0);
    sat::Solver s;
    std::vector<std::vector<sat::Lit>> clauses;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool ok = true;
    for (int c = 0; c < num_clauses && ok; ++c) {
      std::vector<sat::Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(sat::Lit::make(
            static_cast<sat::Var>(rng.below(num_vars)), rng.chance(1, 2)));
      }
      clauses.push_back(clause);
      ok = s.add_clause(clause);
    }
    if (!ok) continue;
    if (s.solve() != sat::SolveResult::Sat) continue;  // rare: truly unsat
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (sat::Lit l : clause) {
        satisfied |= (s.model_value(l) == sat::kTrue);
      }
      EXPECT_TRUE(satisfied) << "model violates a clause, round " << round;
    }
  }
}

TEST(SatStress, ManySolveCallsWithChangingAssumptions) {
  // Incremental workload shaped like IC3's: thousands of short solves
  // with shifting assumptions over one growing clause set.
  Rng rng(7);
  sat::Solver s;
  constexpr int kVars = 60;
  for (int v = 0; v < kVars; ++v) s.new_var();
  for (int round = 0; round < 2000; ++round) {
    if (rng.chance(1, 3)) {
      std::vector<sat::Lit> clause;
      int len = 2 + static_cast<int>(rng.below(3));
      for (int k = 0; k < len; ++k) {
        clause.push_back(sat::Lit::make(
            static_cast<sat::Var>(rng.below(kVars)), rng.chance(1, 2)));
      }
      if (!s.add_clause(clause)) break;  // formula became unsat at level 0
    }
    std::vector<sat::Lit> assumptions;
    for (int k = 0; k < 4; ++k) {
      assumptions.push_back(sat::Lit::make(
          static_cast<sat::Var>(rng.below(kVars)), rng.chance(1, 2)));
    }
    sat::SolveResult r = s.solve(assumptions);
    if (r == sat::SolveResult::Sat) {
      for (sat::Lit a : assumptions) {
        ASSERT_EQ(s.model_value(a), sat::kTrue) << "round " << round;
      }
    } else {
      ASSERT_EQ(r, sat::SolveResult::Unsat);
      ASSERT_FALSE(s.conflict_core().empty() && s.ok())
          << "unsat under assumptions must produce a core, round " << round;
    }
  }
}

class RebuildStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebuildStressTest, AggressiveSolverRebuildsPreserveCorrectness) {
  // rebuild_threshold=2 forces constant frame-solver reconstruction,
  // exercising the clause re-installation path.
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_properties = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    ic3::Ic3Options opts;
    opts.rebuild_threshold = 2;
    ic3::Ic3 engine(ts, p, opts);
    ic3::Ic3Result r = engine.run();
    if (expected.fails_globally(p)) {
      ASSERT_EQ(r.status, CheckStatus::Fails)
          << "seed " << GetParam() << " prop " << p;
      EXPECT_TRUE(ts::is_global_cex(ts, r.cex, p));
    } else {
      ASSERT_EQ(r.status, CheckStatus::Holds)
          << "seed " << GetParam() << " prop " << p;
    }
    EXPECT_GT(r.stats.solver_rebuilds + 1, 0u);  // stat is tracked
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildStressTest,
                         ::testing::Range<std::uint64_t>(600, 615));

class EtfRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtfRandomTest, RandomEtfSubsetsMatchOracle) {
  // Mark a random subset of properties ETF; the verifier's verdicts must
  // match the oracle run with the same ETH assumption set.
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_properties = 4;
  aig::Aig aig = gen::make_random_design(spec);
  Rng rng(GetParam() * 3 + 1);
  for (auto& prop : aig.properties()) {
    prop.expected_to_fail = rng.chance(1, 3);
  }
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);  // ETH-aware

  mp::SeparateVerifier verifier(ts, mp::SeparateOptions{});
  mp::MultiResult result = verifier.run();
  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    if (expected.fails_locally(p)) {
      EXPECT_EQ(result.per_property[p].verdict,
                mp::PropertyVerdict::FailsLocally)
          << "seed " << GetParam() << " prop " << p
          << (ts.expected_to_fail(p) ? " (etf)" : " (eth)");
    } else {
      EXPECT_EQ(result.per_property[p].verdict,
                mp::PropertyVerdict::HoldsLocally)
          << "seed " << GetParam() << " prop " << p
          << (ts.expected_to_fail(p) ? " (etf)" : " (eth)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtfRandomTest,
                         ::testing::Range<std::uint64_t>(700, 720));

}  // namespace
}  // namespace javer
