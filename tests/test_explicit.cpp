// Tests for the explicit-state reference checker on designs with known
// semantics, most importantly the paper's counter (Example 1), whose
// global/local behaviour the paper states explicitly.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "gen/counter.h"
#include "gen/synthetic.h"
#include "ref/explicit_checker.h"

namespace javer::ref {
namespace {

TEST(Explicit, BuggyCounterMatchesPaperExample1) {
  // Paper: P0 (req==1) fails globally and locally; P1 (val<=rval) fails
  // globally (deep CEX) but holds locally — the debugging set is {P0}.
  aig::Aig aig = gen::make_counter({.bits = 5, .buggy = true});
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);

  EXPECT_TRUE(r.fails_globally(0));
  EXPECT_EQ(r.global_fail_depth[0], 0);  // req can be 0 immediately
  EXPECT_TRUE(r.fails_locally(0));
  EXPECT_EQ(r.local_fail_depth[0], 0);

  EXPECT_TRUE(r.fails_globally(1));
  // val must climb to rval+1 = 2^(bits-1)+1: one step per increment.
  EXPECT_EQ(r.global_fail_depth[1], (1 << 4) + 1);
  EXPECT_FALSE(r.fails_locally(1));

  EXPECT_EQ(r.debugging_set(), std::vector<std::size_t>{0});
}

TEST(Explicit, FixedCounterOnlyP0Fails) {
  aig::Aig aig = gen::make_counter({.bits = 5, .buggy = false});
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_TRUE(r.fails_globally(0));
  EXPECT_FALSE(r.fails_globally(1));  // fix makes P1 true
  EXPECT_FALSE(r.fails_locally(1));
  EXPECT_EQ(r.debugging_set(), std::vector<std::size_t>{0});
}

TEST(Explicit, LocalReachableSubsetOfGlobal) {
  aig::Aig aig = gen::make_counter({.bits = 4, .buggy = true});
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_LE(r.locally_reachable_states, r.reachable_states);
}

TEST(Explicit, TogglePropertyDepths) {
  // Latch toggles 0,1,0,1...; property "latch == 0" fails at depth 1.
  aig::Aig aig;
  aig::Lit l = aig.add_latch(Ternary::False);
  aig.set_latch_next(l, ~l);
  aig.add_property(~l, "never_one");
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_EQ(r.global_fail_depth[0], 1);
  EXPECT_EQ(r.local_fail_depth[0], 1);
  EXPECT_EQ(r.reachable_states, 2u);
}

TEST(Explicit, MaskedFailureHoldsLocally) {
  // Two properties on a 3-bit counter: P0 fails at depth 1, P1 at depth 3.
  // Deterministic transitions mean P0 always fails first, so P1 holds
  // locally (the 6s207 phenomenon).
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 1), "p0");
  aig.add_property(~b.eq_const(cnt, 3), "p1");
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_EQ(r.global_fail_depth[0], 1);
  EXPECT_EQ(r.global_fail_depth[1], 3);
  EXPECT_EQ(r.local_fail_depth[0], 1);
  EXPECT_EQ(r.local_fail_depth[1], -1);  // masked by p0
  EXPECT_EQ(r.debugging_set(), std::vector<std::size_t>{0});
}

TEST(Explicit, InputGatedFailuresAllLocal) {
  // Failures gated by distinct inputs do not mask each other.
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig::Lit t0 = aig.add_input("t0");
  aig::Lit t1 = aig.add_input("t1");
  aig.add_property(~b.land(b.eq_const(cnt, 1), t0), "g0");
  aig.add_property(~b.land(b.eq_const(cnt, 2), t1), "g1");
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_EQ(r.local_fail_depth[0], 1);
  EXPECT_EQ(r.local_fail_depth[1], 2);
  EXPECT_EQ(r.debugging_set(), (std::vector<std::size_t>{0, 1}));
}

TEST(Explicit, DesignConstraintsExcludeSteps) {
  // Property fails only when input=1, but a constraint forbids input=1:
  // the property holds.
  aig::Aig aig;
  aig::Lit in = aig.add_input();
  aig::Lit l = aig.add_latch();
  aig.set_latch_next(l, in);
  aig.add_property(~l, "never");
  aig.add_constraint(~in);
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_FALSE(r.fails_globally(0));
  EXPECT_FALSE(r.fails_locally(0));
}

TEST(Explicit, XResetEnumeratesInitialStates) {
  // An X-reset latch that holds its value; property "latch==0" fails at
  // depth 0 via the initial state with value 1.
  aig::Aig aig;
  aig::Lit l = aig.add_latch(Ternary::X);
  aig.set_latch_next(l, l);
  aig.add_property(~l, "zero");
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  EXPECT_EQ(r.global_fail_depth[0], 0);
  EXPECT_EQ(r.local_fail_depth[0], 0);
}

TEST(Explicit, EtfPropertiesDoNotGate) {
  // P0 fails at depth 1 deterministically but is marked expected-to-fail:
  // it must not mask P1's failure at depth 3.
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 1), "etf", /*expected_to_fail=*/true);
  aig.add_property(~b.eq_const(cnt, 3), "eth");
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);  // assumes only ETH properties
  EXPECT_EQ(r.local_fail_depth[0], 1);
  EXPECT_EQ(r.local_fail_depth[1], 3);  // not masked: ETF doesn't gate
}

TEST(Explicit, LimitsEnforced) {
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(8);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 255), "deep");
  ts::TransitionSystem ts(aig);
  ExplicitLimits limits;
  limits.max_states = 10;
  EXPECT_THROW(explicit_check(ts, limits), std::runtime_error);
}

TEST(Explicit, SyntheticDesignClassesAreCorrect) {
  gen::SyntheticSpec spec;
  spec.seed = 3;
  spec.wrap_counter_bits = 4;
  spec.sat_counter_bits = 4;
  spec.rings = 1;
  spec.ring_size = 4;
  spec.ring_props = 4;
  spec.pair_props = 2;
  spec.unreachable_props = 2;
  spec.det_fail_props = 1;
  spec.input_fail_props = 2;
  spec.masked_fail_props = 1;
  spec.fail_window_log2 = 2;
  aig::Aig aig = gen::make_synthetic(spec);
  ts::TransitionSystem ts(aig);
  ExplicitResult r = explicit_check(ts);
  auto classes = gen::synthetic_expected_classes(aig);
  for (std::size_t p = 0; p < classes.size(); ++p) {
    switch (classes[p]) {
      case 0:  // true
        EXPECT_FALSE(r.fails_globally(p)) << "prop " << p;
        EXPECT_FALSE(r.fails_locally(p)) << "prop " << p;
        break;
      case 1:  // debugging set
        EXPECT_TRUE(r.fails_globally(p)) << "prop " << p;
        EXPECT_TRUE(r.fails_locally(p)) << "prop " << p;
        break;
      case 2:  // masked
        EXPECT_TRUE(r.fails_globally(p)) << "prop " << p;
        EXPECT_FALSE(r.fails_locally(p)) << "prop " << p;
        break;
    }
  }
}

}  // namespace
}  // namespace javer::ref
