// Fault-injection and resilience tests (src/fault + the schedulers'
// quarantine/retry machinery): plan grammar and determinism, the degrade
// ladder's pinned rung order, per-task isolation in the WorkerPool, the
// every-site injection matrix (a run under any single fault completes
// with at most the targeted property Unknown and byte-identical verdicts
// elsewhere), post-retry oracle equivalence, persist store retry/crash
// recovery, and the fault.*/retry.* metrics reconciling with the
// per-property failure chains.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "gen/random_design.h"
#include "mp/sched/property_task.h"
#include "mp/sched/scheduler.h"
#include "mp/sched/worker_pool.h"
#include "mp/shard/sharded_scheduler.h"
#include "obs/metrics.h"
#include "persist/persist.h"
#include "test_util.h"

namespace javer {
namespace {

namespace fs = std::filesystem;

aig::Aig small_design(std::uint64_t seed, std::size_t props = 4) {
  gen::RandomDesignSpec spec;
  spec.seed = seed;
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 18;
  spec.num_properties = props;
  return gen::make_random_design(spec);
}

mp::sched::SchedulerOptions local_opts(const std::string& fault_plan = "") {
  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::RunToCompletion;
  so.num_threads = 1;
  so.engine.fault_plan = fault_plan;
  return so;
}

mp::sched::SchedulerOptions hybrid_opts(const std::string& fault_plan = "") {
  mp::sched::SchedulerOptions so = local_opts(fault_plan);
  so.dispatch = mp::sched::DispatchPolicy::HybridBmcIc3;
  so.ic3_slice_seconds = 0.05;
  so.bmc_depth_per_sweep = 4;
  so.bmc_max_depth = 32;
  return so;
}

void expect_same_verdicts(const mp::MultiResult& a, const mp::MultiResult& b,
                          const std::string& tag, long long except = -1) {
  ASSERT_EQ(a.per_property.size(), b.per_property.size()) << tag;
  for (std::size_t p = 0; p < a.per_property.size(); ++p) {
    if (static_cast<long long>(p) == except) continue;
    EXPECT_EQ(a.per_property[p].verdict, b.per_property[p].verdict)
        << tag << " P" << p;
  }
}

void expect_holds_certify(const ts::TransitionSystem& ts,
                          const mp::MultiResult& r) {
  for (std::size_t p = 0; p < r.per_property.size(); ++p) {
    const mp::PropertyResult& pr = r.per_property[p];
    if (pr.verdict == mp::PropertyVerdict::HoldsLocally) {
      testutil::expect_valid_invariant(
          ts, p, mp::sched::local_assumptions(ts, p), pr.invariant);
    } else if (pr.verdict == mp::PropertyVerdict::HoldsGlobally) {
      testutil::expect_valid_invariant(ts, p, {}, pr.invariant);
    }
  }
}

// The first property the fault-free run proves: a good injection target,
// because proving it needs real IC3 work (consecution queries, solver
// clause allocations) that a BMC sweep cannot short-circuit.
long long first_holding_property(const mp::MultiResult& r) {
  for (std::size_t p = 0; p < r.per_property.size(); ++p) {
    if (r.per_property[p].verdict == mp::PropertyVerdict::HoldsLocally ||
        r.per_property[p].verdict == mp::PropertyVerdict::HoldsGlobally) {
      return static_cast<long long>(p);
    }
  }
  return -1;
}

// --- plan grammar ------------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=7; ic3.mic@3+:prop=2 ; sat.alloc ; task.stall:stall=0.25 ;"
      " bmc.solve:p=0.5");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.entries.size(), 4u);

  EXPECT_EQ(plan.entries[0].site, "ic3.mic");
  EXPECT_EQ(plan.entries[0].at, 3u);
  EXPECT_TRUE(plan.entries[0].persistent);
  EXPECT_EQ(plan.entries[0].prop, 2);

  EXPECT_EQ(plan.entries[1].site, "sat.alloc");
  EXPECT_EQ(plan.entries[1].at, 1u);  // bare site = first hit
  EXPECT_FALSE(plan.entries[1].persistent);
  EXPECT_EQ(plan.entries[1].prop, -1);

  EXPECT_EQ(plan.entries[2].site, "task.stall");
  EXPECT_DOUBLE_EQ(plan.entries[2].stall_seconds, 0.25);

  EXPECT_EQ(plan.entries[3].site, "bmc.solve");
  EXPECT_DOUBLE_EQ(plan.entries[3].probability, 0.5);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string spec =
      "seed=9;persist.store@2+;ic3.consecution@1:prop=0;"
      "task.stall@4:stall=0.125";
  fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  fault::FaultPlan again = fault::FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.seed, plan.seed);
  ASSERT_EQ(again.entries.size(), plan.entries.size());
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    EXPECT_EQ(again.entries[i].site, plan.entries[i].site) << i;
    EXPECT_EQ(again.entries[i].at, plan.entries[i].at) << i;
    EXPECT_EQ(again.entries[i].persistent, plan.entries[i].persistent) << i;
    EXPECT_EQ(again.entries[i].prop, plan.entries[i].prop) << i;
    EXPECT_DOUBLE_EQ(again.entries[i].stall_seconds,
                     plan.entries[i].stall_seconds)
        << i;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse(""), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("seed=5"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("bogus.site"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("sat.alloc@0"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("sat.alloc@x"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("bmc.solve:p=1.5"),
               std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("task.stall:stall=-1"),
               std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("ic3.mic:frob=1"), std::runtime_error);
  EXPECT_THROW(fault::FaultPlan::parse("seed=zz;sat.alloc"),
               std::runtime_error);
}

TEST(FaultPlan, KindIsAPropertyOfTheSite) {
  using fault::FaultKind;
  EXPECT_EQ(fault::kind_for_site("sat.alloc"), FaultKind::BadAlloc);
  EXPECT_EQ(fault::kind_for_site("ic3.consecution"), FaultKind::Error);
  EXPECT_EQ(fault::kind_for_site("ic3.mic"), FaultKind::Error);
  EXPECT_EQ(fault::kind_for_site("bmc.solve"), FaultKind::Error);
  EXPECT_EQ(fault::kind_for_site("persist.store"), FaultKind::IoError);
  EXPECT_EQ(fault::kind_for_site("persist.load"), FaultKind::IoError);
  EXPECT_EQ(fault::kind_for_site("persist.store.crash"), FaultKind::IoCrash);
  EXPECT_EQ(fault::kind_for_site("task.stall"), FaultKind::Stall);
  EXPECT_FALSE(fault::kind_for_site("nope").has_value());
}

// --- injector determinism ----------------------------------------------------

TEST(FaultInjector, OneShotFiresAtExactlyTheNthMatchingHit) {
  fault::FaultInjector inj(fault::FaultPlan::parse("ic3.mic@2:prop=1"));
  // Wrong property: counted nowhere (the prop filter gates the ordinal).
  EXPECT_FALSE(inj.evaluate("ic3.mic", 0).has_value());
  EXPECT_EQ(inj.hits(0), 0u);
  // Matching hits: 1st no, 2nd yes, 3rd no (one-shot).
  EXPECT_FALSE(inj.evaluate("ic3.mic", 1).has_value());
  auto hit = inj.evaluate("ic3.mic", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, fault::FaultKind::Error);
  EXPECT_EQ(hit->entry, 0u);
  EXPECT_FALSE(inj.evaluate("ic3.mic", 1).has_value());
  EXPECT_EQ(inj.hits(0), 3u);
  EXPECT_EQ(inj.fired(0), 1u);
  EXPECT_EQ(inj.total_fired(), 1u);
}

TEST(FaultInjector, PersistentFiresFromTheNthHitOn) {
  fault::FaultInjector inj(fault::FaultPlan::parse("bmc.solve@2+"));
  EXPECT_FALSE(inj.evaluate("bmc.solve", -1).has_value());
  EXPECT_TRUE(inj.evaluate("bmc.solve", -1).has_value());
  EXPECT_TRUE(inj.evaluate("bmc.solve", -1).has_value());
  EXPECT_EQ(inj.fired(0), 2u);
}

TEST(FaultInjector, ProbabilisticCoinIsSeedDeterministic) {
  const std::string spec = "seed=42;sat.alloc:p=0.35";
  fault::FaultInjector a(fault::FaultPlan::parse(spec));
  fault::FaultInjector b(fault::FaultPlan::parse(spec));
  std::uint64_t fired = 0;
  for (int i = 0; i < 256; ++i) {
    bool fa = a.evaluate("sat.alloc", -1).has_value();
    bool fb = b.evaluate("sat.alloc", -1).has_value();
    EXPECT_EQ(fa, fb) << "draw " << i;
    fired += fa ? 1 : 0;
  }
  // The seeded coin actually mixes: not all-or-nothing over 256 draws.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 256u);
}

TEST(FaultInjector, CountsFiredEntriesInMetrics) {
  obs::MetricsRegistry metrics;
  fault::FaultInjector inj(fault::FaultPlan::parse("ic3.consecution@1+"));
  inj.set_observability(nullptr, &metrics);
  inj.evaluate("ic3.consecution", -1);
  inj.evaluate("ic3.consecution", -1);
  EXPECT_EQ(metrics.snapshot().counter("fault.injected"), 2u);
}

TEST(ScopedInjection, FirstInstallWinsAndUninstallsOnExit) {
  fault::FaultInjector outer(fault::FaultPlan::parse("sat.alloc@1"));
  fault::FaultInjector inner(fault::FaultPlan::parse("sat.alloc@1"));
  {
    fault::ScopedInjection first(&outer);
    EXPECT_TRUE(first.installed());
    fault::ScopedInjection second(&inner);  // nested scheduler: no-op
    EXPECT_FALSE(second.installed());
    EXPECT_THROW(fault::inject_point("sat.alloc"), std::bad_alloc);
    EXPECT_EQ(outer.total_fired(), 1u);
    EXPECT_EQ(inner.total_fired(), 0u);
  }
  // Slot released: sites are free again.
  fault::inject_point("sat.alloc");
  EXPECT_EQ(outer.total_fired(), 1u);
}

// --- the degrade ladder (pinned) ---------------------------------------------

TEST(DegradeLadder, RungOrderIsPinned) {
  using mp::sched::degrade_for_rung;
  ASSERT_EQ(mp::sched::num_ladder_rungs(), 4);
  EXPECT_STREQ(mp::sched::rung_name(0), "default");
  EXPECT_STREQ(mp::sched::rung_name(1), "per-frame");
  EXPECT_STREQ(mp::sched::rung_name(2), "direct-tseitin");
  EXPECT_STREQ(mp::sched::rung_name(3), "simplify-off");
  EXPECT_STREQ(mp::sched::rung_name(4), "isolated");

  mp::sched::EngineOptions base;
  base.ic3_solver = ic3::Ic3SolverMode::Monolithic;
  base.ic3_use_template = true;
  base.simplify = true;
  base.clause_reuse = true;
  base.sim_filter.mode = mp::simfilter::SimFilterMode::Full;

  mp::sched::EngineOptions r1 = degrade_for_rung(base, 1);
  EXPECT_EQ(r1.ic3_solver, ic3::Ic3SolverMode::PerFrame);
  EXPECT_TRUE(r1.ic3_use_template);  // rung 1 only swaps the solver mode

  mp::sched::EngineOptions r2 = degrade_for_rung(base, 2);
  EXPECT_EQ(r2.ic3_solver, ic3::Ic3SolverMode::PerFrame);  // cumulative
  EXPECT_FALSE(r2.ic3_use_template);
  EXPECT_TRUE(r2.simplify);

  mp::sched::EngineOptions r3 = degrade_for_rung(base, 3);
  EXPECT_FALSE(r3.ic3_use_template);
  EXPECT_FALSE(r3.simplify);
  EXPECT_TRUE(r3.clause_reuse);

  mp::sched::EngineOptions r4 = degrade_for_rung(base, 4);
  EXPECT_FALSE(r4.simplify);
  EXPECT_FALSE(r4.clause_reuse);
  EXPECT_EQ(r4.sim_filter.mode, mp::simfilter::SimFilterMode::Off);

  // Degrading an already-degraded config is idempotent.
  mp::sched::EngineOptions twice = degrade_for_rung(r4, 4);
  EXPECT_EQ(twice.ic3_solver, r4.ic3_solver);
  EXPECT_EQ(twice.clause_reuse, r4.clause_reuse);
}

// --- worker-pool isolation ---------------------------------------------------

TEST(WorkerPool, IsolatesAThrowingItemByDefault) {
  mp::sched::WorkerPool pool(1);  // single-threaded: deterministic order
  std::vector<int> ran(6, 0);
  auto fn = [&](std::size_t i) {
    ran[i] = 1;
    if (i == 2) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.run(ran.size(), fn), std::runtime_error);
  // Every sibling of the bad item still ran.
  for (std::size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i], 1) << i;
}

TEST(WorkerPool, FailFastSkipsTheRemainingQueue) {
  mp::sched::WorkerPool pool(1);
  pool.set_fail_fast(true);
  std::vector<int> ran(6, 0);
  auto fn = [&](std::size_t i) {
    ran[i] = 1;
    if (i == 2) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.run(ran.size(), fn), std::runtime_error);
  EXPECT_EQ(ran[0], 1);
  EXPECT_EQ(ran[1], 1);
  EXPECT_EQ(ran[2], 1);  // the throwing item itself started
  EXPECT_EQ(ran[3], 0);
  EXPECT_EQ(ran[4], 0);
  EXPECT_EQ(ran[5], 0);
}

// --- scheduler: recovery, exhaustion, site matrix ----------------------------

TEST(FaultRecovery, OneShotFaultRetriesOnceAndMatchesFaultFree) {
  aig::Aig aig = small_design(31);
  ts::TransitionSystem ts(aig);
  mp::MultiResult clean = mp::sched::Scheduler(ts, local_opts()).run();
  long long target = first_holding_property(clean);
  ASSERT_GE(target, 0) << "need a holding property to inject under";

  obs::MetricsRegistry metrics;
  mp::sched::SchedulerOptions so = local_opts(
      "ic3.consecution@1:prop=" + std::to_string(target));
  so.engine.metrics = &metrics;
  mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();

  // The retry recovered: identical verdicts everywhere, one rung climbed.
  expect_same_verdicts(clean, faulty, "one-shot");
  const mp::PropertyResult& pr = faulty.per_property[target];
  EXPECT_EQ(pr.retries, 1);
  EXPECT_EQ(pr.final_rung, 1);
  ASSERT_EQ(pr.failure_chain.size(), 1u);
  EXPECT_EQ(pr.failure_chain[0].rfind("default: ", 0), 0u)
      << pr.failure_chain[0];
  // The recovered verdict survived the post-retry oracle.
  expect_holds_certify(ts, faulty);

  obs::MetricsSnapshot ms = metrics.snapshot();
  EXPECT_EQ(ms.counter("fault.injected"), 1u);
  EXPECT_EQ(ms.counter("fault.caught"), 1u);
  EXPECT_EQ(ms.counter("retry.attempts"), 1u);
  EXPECT_EQ(ms.counter("retry.recovered"), 1u);
  EXPECT_EQ(ms.counter("retry.exhausted"), 0u);
}

TEST(FaultRecovery, PersistentFaultClimbsEveryRungThenClosesUnknown) {
  aig::Aig aig = small_design(31);
  ts::TransitionSystem ts(aig);
  mp::MultiResult clean = mp::sched::Scheduler(ts, local_opts()).run();
  long long target = first_holding_property(clean);
  ASSERT_GE(target, 0);

  obs::MetricsRegistry metrics;
  mp::sched::SchedulerOptions so = local_opts(
      "ic3.consecution@1+:prop=" + std::to_string(target));
  so.engine.metrics = &metrics;
  mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();

  // Siblings are untouched; only the target degrades to Unknown.
  expect_same_verdicts(clean, faulty, "persistent", target);
  const mp::PropertyResult& pr = faulty.per_property[target];
  EXPECT_EQ(pr.verdict, mp::PropertyVerdict::Unknown);
  EXPECT_EQ(pr.retries, 4);
  EXPECT_EQ(pr.final_rung, 4);
  // One failure per rung, in the pinned ladder order.
  ASSERT_EQ(pr.failure_chain.size(), 5u);
  const char* rungs[] = {"default: ", "per-frame: ", "direct-tseitin: ",
                         "simplify-off: ", "isolated: "};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pr.failure_chain[i].rfind(rungs[i], 0), 0u)
        << i << ": " << pr.failure_chain[i];
  }
  expect_holds_certify(ts, faulty);

  // Run-level counters reconcile with the per-property chains.
  obs::MetricsSnapshot ms = metrics.snapshot();
  std::uint64_t chain_total = 0, retries_total = 0;
  for (const mp::PropertyResult& r : faulty.per_property) {
    chain_total += r.failure_chain.size();
    retries_total += static_cast<std::uint64_t>(r.retries);
  }
  EXPECT_EQ(ms.counter("fault.caught"), chain_total);
  EXPECT_EQ(ms.counter("retry.attempts"), retries_total);
  EXPECT_EQ(ms.counter("retry.exhausted"), 1u);
  EXPECT_EQ(ms.counter("retry.recovered"), 0u);
}

TEST(FaultMatrix, EveryThrowingSiteLeavesSiblingsByteIdentical) {
  aig::Aig aig = small_design(47, 5);
  ts::TransitionSystem ts(aig);
  mp::MultiResult clean = mp::sched::Scheduler(ts, hybrid_opts()).run();
  long long target = first_holding_property(clean);
  ASSERT_GE(target, 0);

  // Sites that are guaranteed to be exercised while proving a holding
  // property; persistent faults there must quarantine exactly the target.
  for (const char* site : {"sat.alloc", "ic3.consecution"}) {
    mp::sched::SchedulerOptions so = hybrid_opts(
        std::string(site) + "@1+:prop=" + std::to_string(target));
    mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();
    expect_same_verdicts(clean, faulty, site, target);
    EXPECT_EQ(faulty.per_property[target].verdict,
              mp::PropertyVerdict::Unknown)
        << site;
    EXPECT_GT(faulty.per_property[target].retries, 0) << site;
    expect_holds_certify(ts, faulty);
  }

  // ic3.mic only fires when generalization runs; either the target closed
  // identically (fault never hit) or it was quarantined — never a flip.
  {
    mp::sched::SchedulerOptions so = hybrid_opts(
        "ic3.mic@1+:prop=" + std::to_string(target));
    mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();
    expect_same_verdicts(clean, faulty, "ic3.mic", target);
    const mp::PropertyVerdict v = faulty.per_property[target].verdict;
    EXPECT_TRUE(v == clean.per_property[target].verdict ||
                v == mp::PropertyVerdict::Unknown)
        << "ic3.mic flipped the target verdict";
    expect_holds_certify(ts, faulty);
  }
}

TEST(FaultMatrix, BmcSweepFaultQuarantinesTheSweepNotTheRun) {
  aig::Aig aig = small_design(47, 5);
  ts::TransitionSystem ts(aig);
  mp::MultiResult clean = mp::sched::Scheduler(ts, hybrid_opts()).run();

  obs::MetricsRegistry metrics;
  mp::sched::SchedulerOptions so = hybrid_opts("bmc.solve@1+");
  so.engine.metrics = &metrics;
  mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();

  // The sweep is disabled after the first failure; IC3 still closes every
  // property with the same verdicts.
  expect_same_verdicts(clean, faulty, "bmc-sweep");
  EXPECT_GE(metrics.snapshot().counter("fault.caught"), 1u);
  expect_holds_certify(ts, faulty);
}

TEST(FaultMatrix, ShardedRunSurvivesATargetedFault) {
  aig::Aig aig = small_design(53, 6);
  ts::TransitionSystem ts(aig);
  mp::shard::ShardedOptions base;
  base.base = hybrid_opts();
  base.clustering.min_similarity = 0.3;
  base.clustering.max_cluster_size = 2;
  mp::MultiResult clean = mp::shard::ShardedScheduler(ts, base).run();
  long long target = first_holding_property(clean);
  ASSERT_GE(target, 0);

  mp::shard::ShardedOptions so = base;
  so.base.engine.fault_plan =
      "ic3.consecution@1+:prop=" + std::to_string(target);
  mp::MultiResult faulty = mp::shard::ShardedScheduler(ts, so).run();
  expect_same_verdicts(clean, faulty, "sharded", target);
  EXPECT_EQ(faulty.per_property[target].verdict, mp::PropertyVerdict::Unknown);
  expect_holds_certify(ts, faulty);
}

TEST(FaultMatrix, TaskStallDelaysButDoesNotChangeVerdicts) {
  aig::Aig aig = small_design(31);
  ts::TransitionSystem ts(aig);
  mp::MultiResult clean = mp::sched::Scheduler(ts, local_opts()).run();

  obs::MetricsRegistry metrics;
  mp::sched::SchedulerOptions so =
      local_opts("task.stall@1:stall=0.05,prop=0");
  so.engine.metrics = &metrics;
  mp::MultiResult faulty = mp::sched::Scheduler(ts, so).run();
  expect_same_verdicts(clean, faulty, "stall");
  EXPECT_EQ(faulty.per_property[0].retries, 0);
  EXPECT_EQ(metrics.snapshot().counter("fault.injected"), 1u);
}

// --- persist: transient-store retry, crash recovery --------------------------

std::string fresh_dir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("javer_fault_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::size_t count_tmp_files(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().find(".jvpc.tmp.") != std::string::npos) {
      n++;
    }
  }
  return n;
}

TEST(PersistFault, TransientStoreErrorRetriesAndLands) {
  aig::Aig aig = small_design(12, 3);
  ts::TransitionSystem ts(aig);
  const std::string dir = fresh_dir("retry");
  persist::PersistCache cache(dir);
  const std::uint64_t fp = aig::fingerprint(aig);
  const std::uint64_t sig = persist::index_set_signature({0, 1});
  std::vector<ts::Cube> cubes{{ts::StateLit{0, true}},
                              {ts::StateLit{1, false}, ts::StateLit{3, true}}};

  fault::FaultInjector inj(fault::FaultPlan::parse("persist.store@1"));
  fault::ScopedInjection scope(&inj);
  ASSERT_TRUE(scope.installed());
  cache.store_clause_db(fp, sig, cubes);

  // One transient failure, absorbed by the retry loop: the entry landed.
  persist::PersistStats st = cache.stats();
  EXPECT_GE(st.store_retries, 1u);
  EXPECT_EQ(st.store_errors, 0u);
  EXPECT_EQ(st.dbs_stored, 1u);
  auto loaded = cache.load_clause_db(ts, fp, sig);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, cubes);
}

TEST(PersistFault, PersistentStoreErrorExhaustsAttempts) {
  aig::Aig aig = small_design(12, 3);
  ts::TransitionSystem ts(aig);
  const std::string dir = fresh_dir("exhaust");
  persist::PersistCache cache(dir);
  const std::uint64_t fp = aig::fingerprint(aig);
  const std::uint64_t sig = persist::index_set_signature({0, 1});

  fault::FaultInjector inj(fault::FaultPlan::parse("persist.store@1+"));
  fault::ScopedInjection scope(&inj);
  ASSERT_TRUE(scope.installed());
  cache.store_clause_db(fp, sig, {{ts::StateLit{0, true}}});

  persist::PersistStats st = cache.stats();
  EXPECT_EQ(st.store_errors, 1u);
  EXPECT_EQ(st.store_retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(st.dbs_stored, 0u);
  // Nothing half-written is left for a reader to trip over.
  EXPECT_EQ(count_tmp_files(dir), 0u);
}

TEST(PersistFault, MidWriteCrashLeavesOrphanThatGcSweeps) {
  aig::Aig aig = small_design(12, 3);
  ts::TransitionSystem ts(aig);
  const std::string dir = fresh_dir("crash");
  persist::PersistCache cache(dir);
  const std::uint64_t fp = aig::fingerprint(aig);
  const std::uint64_t sig = persist::index_set_signature({0, 1});

  {
    fault::FaultInjector inj(
        fault::FaultPlan::parse("persist.store.crash@1"));
    fault::ScopedInjection scope(&inj);
    ASSERT_TRUE(scope.installed());
    cache.store_clause_db(fp, sig, {{ts::StateLit{0, true}}});
  }
  // The simulated crash abandoned a partial staging file...
  EXPECT_EQ(cache.stats().store_errors, 1u);
  EXPECT_EQ(count_tmp_files(dir), 1u);
  // ...which never shadows the real entry (different name)...
  EXPECT_FALSE(cache.load_clause_db(ts, fp, sig).has_value());
  // ...and the next GC pass sweeps it.
  persist::GcStats gc = persist::collect_garbage(dir);
  EXPECT_GE(gc.removed_stale_tmp, 1u);
  EXPECT_EQ(count_tmp_files(dir), 0u);
}

TEST(PersistFault, InjectedLoadErrorDegradesToAMiss) {
  aig::Aig aig = small_design(12, 3);
  ts::TransitionSystem ts(aig);
  const std::string dir = fresh_dir("load");
  persist::PersistCache cache(dir);
  const std::uint64_t fp = aig::fingerprint(aig);
  const std::uint64_t sig = persist::index_set_signature({0, 1});
  std::vector<ts::Cube> cubes{{ts::StateLit{2, true}}};
  cache.store_clause_db(fp, sig, cubes);

  fault::FaultInjector inj(fault::FaultPlan::parse("persist.load@1"));
  fault::ScopedInjection scope(&inj);
  ASSERT_TRUE(scope.installed());
  // First load hits the injected I/O error: a counted miss, not a crash.
  EXPECT_FALSE(cache.load_clause_db(ts, fp, sig).has_value());
  EXPECT_EQ(cache.stats().load_errors, 1u);
  // The entry itself is intact; the next load serves it.
  auto loaded = cache.load_clause_db(ts, fp, sig);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, cubes);
}

}  // namespace
}  // namespace javer
