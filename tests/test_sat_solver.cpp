// Unit tests for the CDCL solver on hand-crafted formulas: propagation,
// conflicts, assumptions, cores, incremental use.
#include <gtest/gtest.h>

#include "sat/solver.h"

namespace javer::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(Lit, Encoding) {
  Lit a = Lit::make(3);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.sign());
  Lit b = ~a;
  EXPECT_EQ(b.var(), 3);
  EXPECT_TRUE(b.sign());
  EXPECT_EQ(~b, a);
  EXPECT_EQ(a ^ true, b);
  EXPECT_EQ(a ^ false, a);
  EXPECT_NE(a, b);
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  Var v = s.new_var();
  EXPECT_TRUE(s.add_unit(pos(v)));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_EQ(s.model_value(v), kTrue);
}

TEST(Solver, ContradictingUnits) {
  Solver s;
  Var v = s.new_var();
  EXPECT_TRUE(s.add_unit(pos(v)));
  EXPECT_FALSE(s.add_unit(neg(v)));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, BinaryImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_binary(neg(v[i]), pos(v[i + 1]));  // v[i] -> v[i+1]
  }
  s.add_unit(pos(v[0]));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.model_value(v[i]), kTrue) << "var " << i;
  }
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: p[i][h] with per-pigeon at-least-one and per-hole
  // at-most-one constraints.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_binary(pos(p[i][0]), pos(p[i][1]));
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_binary(neg(p[i][h]), neg(p[j][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  Var v = s.new_var();
  Var w = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(v), neg(v), pos(w)}));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Solver s;
  Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(v), pos(v), pos(v)}));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_EQ(s.model_value(v), kTrue);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  s.add_binary(neg(a), pos(b));  // a -> b
  EXPECT_EQ(s.solve({pos(a)}), SolveResult::Sat);
  EXPECT_EQ(s.model_value(b), kTrue);
  // Incremental: same solver, different assumptions.
  EXPECT_EQ(s.solve({pos(a), neg(b)}), SolveResult::Unsat);
  EXPECT_EQ(s.solve({neg(b)}), SolveResult::Sat);
  EXPECT_EQ(s.model_value(a), kFalse);
}

TEST(Solver, ConflictCoreIsSubsetOfAssumptions) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  Var c = s.new_var();
  Var d = s.new_var();
  s.add_binary(neg(a), neg(b));  // a -> !b
  EXPECT_EQ(s.solve({pos(a), pos(b), pos(c), pos(d)}), SolveResult::Unsat);
  const auto& core = s.conflict_core();
  // Core must mention only a and b, and both are needed.
  for (Lit l : core) {
    EXPECT_TRUE(l == pos(a) || l == pos(b)) << "unexpected core lit";
  }
  EXPECT_GE(core.size(), 1u);
  EXPECT_LE(core.size(), 2u);
}

TEST(Solver, CoreWithImpliedAssumption) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  Var c = s.new_var();
  s.add_binary(neg(a), pos(b));  // a -> b
  s.add_binary(neg(b), pos(c));  // b -> c
  // a forces c; assuming !c contradicts.
  EXPECT_EQ(s.solve({pos(a), neg(c)}), SolveResult::Unsat);
  const auto& core = s.conflict_core();
  for (Lit l : core) {
    EXPECT_TRUE(l == pos(a) || l == neg(c));
  }
  EXPECT_FALSE(core.empty());
}

TEST(Solver, FalseAssumptionAtLevelZero) {
  Solver s;
  Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_EQ(s.solve({neg(a)}), SolveResult::Unsat);
  ASSERT_EQ(s.conflict_core().size(), 1u);
  EXPECT_EQ(s.conflict_core()[0], neg(a));
}

TEST(Solver, SolveIsRepeatable) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_EQ(s.solve({neg(a)}), SolveResult::Sat);
    EXPECT_EQ(s.model_value(b), kTrue);
    EXPECT_EQ(s.solve({neg(a), neg(b)}), SolveResult::Unsat);
  }
}

TEST(Solver, AddClausesBetweenSolves) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  s.add_unit(neg(a));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, ConflictBudgetReturnsUndecided) {
  // A hard instance (pigeonhole 8 into 7) with a tiny conflict budget must
  // come back Undecided rather than hanging.
  Solver s;
  constexpr int n = 8;
  std::vector<std::vector<Var>> p(n, std::vector<Var>(n - 1));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < n - 1; ++h) clause.push_back(pos(p[i][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < n - 1; ++h) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        s.add_binary(neg(p[i][h]), neg(p[j][h]));
      }
    }
  }
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), SolveResult::Undecided);
  s.set_conflict_budget(0);
}

TEST(Solver, StatsAccumulate) {
  Solver s;
  Var a = s.new_var();
  Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  s.solve();
  EXPECT_GE(s.stats().solves, 1u);
}

TEST(Solver, ManyVariablesLargeChain) {
  Solver s;
  constexpr int n = 2000;
  std::vector<Var> v;
  for (int i = 0; i < n; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < n; ++i) s.add_binary(neg(v[i]), pos(v[i + 1]));
  s.add_unit(pos(v[0]));
  ASSERT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_EQ(s.model_value(v[n - 1]), kTrue);
  EXPECT_EQ(s.solve({neg(v[n - 1])}), SolveResult::Unsat);
}

TEST(Solver, PolarityHintRespectedWhenFree) {
  Solver s;
  Var a = s.new_var();
  s.set_polarity(a, true);
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_EQ(s.model_value(a), kTrue);
  Solver s2;
  Var b = s2.new_var();
  s2.set_polarity(b, false);
  EXPECT_EQ(s2.solve(), SolveResult::Sat);
  EXPECT_EQ(s2.model_value(b), kFalse);
}

}  // namespace
}  // namespace javer::sat
