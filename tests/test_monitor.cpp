// Run-health monitor tests (src/obs/monitor): the progress cell / board
// plumbing, the stall watchdog's one-instant-per-episode latch and its
// preemption handshake, the rendered report lines, and the end-to-end
// acceptance criteria — a scheduler run's final board totals match the
// report verdict counts, an artificially stalled task (the
// EngineOptions::debug_stall_* hook) triggers exactly one watchdog/stall
// instant, and with preemption on the stalled task is softly suspended,
// resumed, and still produces its certified verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "ic3/certify.h"
#include "mp/sched/scheduler.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "ts/transition_system.h"

namespace javer {
namespace {

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// --- TaskProgress / ProgressBoard ------------------------------------------

TEST(ProgressBoard, CellsPublishAndReadBackThroughStablePointers) {
  obs::ProgressBoard board;
  obs::TaskProgress* a = board.register_task(/*property=*/4, /*shard=*/1);
  obs::TaskProgress* sweep = board.register_task(/*property=*/-1);
  ASSERT_EQ(board.entries().size(), 2u);
  EXPECT_EQ(board.entries()[0], a);  // registration order, stable pointers

  EXPECT_EQ(a->property(), 4);
  EXPECT_EQ(a->shard(), 1);
  EXPECT_EQ(a->state(), obs::ProgressState::kPending);
  a->set_state(obs::ProgressState::kRunning);
  a->set_frames(6);
  a->set_obligations(42);
  a->set_slices(3);
  a->set_slice_scale(2.5);
  EXPECT_EQ(a->state(), obs::ProgressState::kRunning);
  EXPECT_EQ(a->frames(), 6);
  EXPECT_EQ(a->obligations(), 42u);
  EXPECT_EQ(a->slices(), 3u);
  EXPECT_DOUBLE_EQ(a->slice_scale(), 2.5);

  EXPECT_EQ(sweep->property(), -1);
  EXPECT_EQ(sweep->shard(), -1);
  sweep->set_depth(9);
  EXPECT_EQ(sweep->depth(), 9);

  // publish_engine is the budget-poll fast path: frames + obligations +
  // a fresh activity stamp.
  std::int64_t before = a->last_activity_us();
  sleep_seconds(0.002);
  a->publish_engine(7, 50);
  EXPECT_EQ(a->frames(), 7);
  EXPECT_EQ(a->obligations(), 50u);
  EXPECT_GT(a->last_activity_us(), before);
  EXPECT_LE(a->last_activity_us(), board.now_us());

  // The preempt handshake is a plain request/observe/clear cell.
  EXPECT_FALSE(a->preempt_requested());
  a->request_preempt();
  EXPECT_TRUE(a->preempt_requested());
  a->clear_preempt();
  EXPECT_FALSE(a->preempt_requested());
}

// --- the stall watchdog ----------------------------------------------------

TEST(ProgressMonitor, WatchdogEmitsOneInstantPerStallEpisode) {
  obs::ProgressBoard board;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::MonitorOptions mo;
  mo.stall_seconds = 0.05;
  mo.out = nullptr;  // watchdog only, no rendering
  obs::ProgressMonitor monitor(&board, mo, &tracer, &metrics);

  obs::TaskProgress* cell = board.register_task(/*property=*/3, /*shard=*/1);
  cell->set_state(obs::ProgressState::kRunning);

  // Age past the threshold: the first poll opens a stall episode; the
  // latch keeps further polls of the same episode silent.
  sleep_seconds(0.15);
  monitor.poll();
  monitor.poll();
  monitor.poll();
  EXPECT_EQ(monitor.stall_events(), 1u);
  EXPECT_EQ(metrics.counter("obs.stalls"), 1u);

  // Activity resumes: the latch resets without a new event...
  cell->touch();
  monitor.poll();
  EXPECT_EQ(monitor.stall_events(), 1u);

  // ...and the next quiet spell is a fresh episode.
  sleep_seconds(0.15);
  monitor.poll();
  EXPECT_EQ(monitor.stall_events(), 2u);

  // Terminal cells never stall, however old their last activity.
  cell->set_state(obs::ProgressState::kHolds);
  sleep_seconds(0.15);
  monitor.poll();
  EXPECT_EQ(monitor.stall_events(), 2u);

  // Each episode produced exactly one tagged watchdog/stall instant.
  std::size_t stall_instants = 0;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (std::string_view(ev.category) == "watchdog" &&
        std::string_view(ev.name) == "stall") {
      stall_instants++;
      EXPECT_EQ(ev.phase, 'i');
      EXPECT_EQ(ev.shard, 1);
      EXPECT_EQ(ev.property, 3);
      EXPECT_NE(ev.args.find("\"age_ms\":"), std::string::npos);
    }
  }
  EXPECT_EQ(stall_instants, 2u);

  // Preemption was off: the watchdog observed but never intervened.
  EXPECT_EQ(monitor.preempt_requests(), 0u);
  EXPECT_FALSE(cell->preempt_requested());
}

TEST(ProgressMonitor, WatchdogPreemptsPropertyCellsButNotSweeps) {
  obs::ProgressBoard board;
  obs::MetricsRegistry metrics;
  obs::MonitorOptions mo;
  mo.stall_seconds = 0.05;
  mo.preempt = true;
  obs::ProgressMonitor monitor(&board, mo, /*tracer=*/nullptr, &metrics);

  obs::TaskProgress* task = board.register_task(/*property=*/0, /*shard=*/0);
  obs::TaskProgress* sweep = board.register_task(/*property=*/-1, 0);
  task->set_state(obs::ProgressState::kRunning);
  sweep->set_state(obs::ProgressState::kRunning);

  sleep_seconds(0.15);
  monitor.poll();
  // Both cells stalled, but only the property task can be rescheduled —
  // a preempted sweep has nowhere to yield to.
  EXPECT_EQ(monitor.stall_events(), 2u);
  EXPECT_EQ(monitor.preempt_requests(), 1u);
  EXPECT_EQ(metrics.counter("obs.preempts"), 1u);
  EXPECT_TRUE(task->preempt_requested());
  EXPECT_FALSE(sweep->preempt_requested());
}

// --- rendered reports ------------------------------------------------------

TEST(ProgressMonitor, ReportsRenderCellTotalsAndFoldFinalUnknowns) {
  obs::ProgressBoard board;
  obs::MonitorOptions mo;
  std::ostringstream out;
  mo.out = &out;
  mo.verbose = true;
  obs::ProgressMonitor monitor(&board, mo);

  obs::TaskProgress* h1 = board.register_task(0, 0);
  obs::TaskProgress* h2 = board.register_task(1, 0);
  obs::TaskProgress* f = board.register_task(2, 0);
  obs::TaskProgress* running = board.register_task(3, 0);
  board.register_task(5, 0);  // stays pending
  obs::TaskProgress* sweep = board.register_task(-1, 0);
  h1->set_state(obs::ProgressState::kHolds);
  h1->set_obligations(4);
  h2->set_state(obs::ProgressState::kHolds);
  f->set_state(obs::ProgressState::kFails);
  running->set_state(obs::ProgressState::kRunning);
  running->set_frames(5);
  running->set_obligations(5);
  running->set_slices(2);
  sweep->set_state(obs::ProgressState::kRunning);
  sweep->set_depth(7);

  monitor.poll();
  std::string periodic = out.str();
  EXPECT_NE(periodic.find("props=5 closed=3/5 (holds=2 fails=1 unknown=0) "
                          "running=1 frames<=5 depth<=7 obls=9 stalls=0"),
            std::string::npos)
      << periodic;
  // Verbose mode lists the open cells: the running task and the sweep
  // (terminal cells are not repeated every tick).
  EXPECT_NE(periodic.find("P3 running frames=5"), std::string::npos);
  EXPECT_NE(periodic.find("sweep running depth=7"), std::string::npos);
  EXPECT_EQ(periodic.find("P0 "), std::string::npos);

  // stop() renders the final summary once (idempotently), folding the
  // still-open cells into `unknown` so the totals match what a report
  // would say about an interrupted run.
  out.str("");
  monitor.stop();
  monitor.stop();
  std::string final_line = out.str();
  EXPECT_NE(final_line.find("progress: final "), std::string::npos);
  EXPECT_NE(final_line.find(
                "props=5 holds=2 fails=1 unknown=2 stalls=0 preempts=0"),
            std::string::npos)
      << final_line;
  EXPECT_EQ(final_line.find("final", final_line.find("final") + 1),
            std::string::npos)
      << "final summary rendered twice: " << final_line;
}

// --- end-to-end: schedulers under the monitor ------------------------------

gen::SyntheticSpec small_multi_cone() {
  gen::SyntheticSpec spec;
  spec.seed = 181;
  spec.wrap_counter_bits = 8;
  spec.rings = 2;
  spec.ring_size = 4;
  spec.ring_props = 4;
  spec.pair_props = 2;
  spec.unreachable_props = 2;
  spec.det_fail_props = 1;
  spec.input_fail_props = 1;
  return spec;
}

// A tiny all-true design for the stall/preemption tests: the injected
// stall dominates the runtime, everything else proves in one frame.
gen::SyntheticSpec tiny_ring() {
  gen::SyntheticSpec spec;
  spec.seed = 7;
  spec.rings = 1;
  spec.ring_size = 4;
  spec.ring_props = 4;
  spec.pair_props = 2;
  spec.unreachable_props = 0;
  return spec;
}

TEST(MonitorEndToEnd, FinalBoardTotalsMatchTheReportVerdicts) {
  aig::Aig aig = gen::make_synthetic(small_multi_cone());
  ts::TransitionSystem ts(aig);

  obs::ProgressBoard board;
  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::HybridBmcIc3;
  so.ic3_slice_seconds = 0.05;
  so.bmc_depth_per_sweep = 4;
  so.bmc_max_depth = 32;
  so.engine.progress = &board;
  mp::MultiResult r = mp::sched::Scheduler(ts, so).run();

  std::size_t holds = 0, fails = 0, unknown = 0;
  for (const mp::PropertyResult& pr : r.per_property) {
    switch (pr.verdict) {
      case mp::PropertyVerdict::HoldsGlobally:
      case mp::PropertyVerdict::HoldsLocally:
        holds++;
        break;
      case mp::PropertyVerdict::FailsLocally:
      case mp::PropertyVerdict::FailsGlobally:
        fails++;
        break;
      case mp::PropertyVerdict::Unknown:
        unknown++;
        break;
    }
  }

  // Every property registered a cell, every cell ended terminal, and the
  // board's totals are exactly the report's verdict counts.
  std::size_t cell_holds = 0, cell_fails = 0, cell_unknown = 0,
              property_cells = 0, sweep_cells = 0;
  for (obs::TaskProgress* cell : board.entries()) {
    if (cell->property() < 0) {
      sweep_cells++;
      continue;
    }
    property_cells++;
    switch (cell->state()) {
      case obs::ProgressState::kHolds:
        cell_holds++;
        break;
      case obs::ProgressState::kFails:
        cell_fails++;
        break;
      case obs::ProgressState::kUnknown:
        cell_unknown++;
        break;
      default:
        ADD_FAILURE() << "non-terminal cell for property "
                      << cell->property();
    }
  }
  EXPECT_EQ(property_cells, ts.num_properties());
  EXPECT_EQ(property_cells, r.per_property.size());
  EXPECT_GE(sweep_cells, 1u);  // the hybrid dispatch ran a BMC sweep
  EXPECT_EQ(cell_holds, holds);
  EXPECT_EQ(cell_fails, fails);
  EXPECT_EQ(cell_unknown, unknown);

  // The final rendered summary agrees with the same numbers.
  std::ostringstream out;
  obs::MonitorOptions mo;
  mo.out = &out;
  obs::ProgressMonitor monitor(&board, mo);
  monitor.stop();
  std::string expect = "props=" + std::to_string(r.per_property.size()) +
                       " holds=" + std::to_string(holds) +
                       " fails=" + std::to_string(fails) +
                       " unknown=" + std::to_string(unknown);
  EXPECT_NE(out.str().find(expect), std::string::npos) << out.str();
}

TEST(MonitorEndToEnd, InjectedStallTriggersExactlyOneWatchdogInstant) {
  aig::Aig aig = gen::make_synthetic(tiny_ring());
  ts::TransitionSystem ts(aig);

  obs::ProgressBoard board;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::MonitorOptions mo;
  mo.stall_seconds = 0.15;
  mo.out = nullptr;
  obs::ProgressMonitor monitor(&board, mo, &tracer, &metrics);

  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::RunToCompletion;
  so.engine.progress = &board;
  so.engine.debug_stall_prop = 0;
  so.engine.debug_stall_seconds = 0.75;
  mp::sched::Scheduler sched(ts, so);

  // The scheduler runs in a worker; the test thread *is* the monitor,
  // polling on a fast cadence so the watchdog fires deterministically
  // inside the injected 0.75s quiet window.
  std::atomic<bool> done{false};
  mp::MultiResult r;
  std::thread runner([&] {
    r = sched.run();
    done.store(true);
  });
  while (!done.load()) {
    monitor.poll();
    sleep_seconds(0.01);
  }
  runner.join();
  monitor.poll();  // every cell is terminal now; must not add stalls

  EXPECT_EQ(monitor.stall_events(), 1u);
  EXPECT_EQ(metrics.counter("obs.stalls"), 1u);
  std::size_t stall_instants = 0;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (std::string_view(ev.category) == "watchdog" &&
        std::string_view(ev.name) == "stall") {
      stall_instants++;
      EXPECT_EQ(ev.property, 0);
    }
  }
  EXPECT_EQ(stall_instants, 1u);

  // The stall was observation-only (no preemption): the run itself is
  // untouched and every property still proves.
  for (const mp::PropertyResult& pr : r.per_property) {
    EXPECT_EQ(pr.verdict, mp::PropertyVerdict::HoldsLocally);
  }
  EXPECT_EQ(monitor.preempt_requests(), 0u);
}

TEST(MonitorEndToEnd, PreemptedStalledTaskResumesWithCertifiedVerdict) {
  aig::Aig aig = gen::make_synthetic(tiny_ring());
  ts::TransitionSystem ts(aig);

  obs::ProgressBoard board;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::MonitorOptions mo;
  mo.stall_seconds = 0.15;
  mo.preempt = true;
  mo.out = nullptr;
  obs::ProgressMonitor monitor(&board, mo, &tracer, &metrics);

  mp::sched::SchedulerOptions so;
  so.proof_mode = mp::sched::ProofMode::Local;
  so.dispatch = mp::sched::DispatchPolicy::RunToCompletion;
  so.engine.progress = &board;
  so.engine.debug_stall_prop = 0;
  // Long enough that only the watchdog's preempt ends the quiet window
  // (the stall hook spins until preempted, then the engine's budget poll
  // turns the pending request into a clean Suspend).
  so.engine.debug_stall_seconds = 10.0;
  mp::sched::Scheduler sched(ts, so);

  std::atomic<bool> done{false};
  mp::MultiResult r;
  std::thread runner([&] {
    r = sched.run();
    done.store(true);
  });
  while (!done.load()) {
    monitor.poll();
    sleep_seconds(0.01);
  }
  runner.join();

  EXPECT_GE(monitor.stall_events(), 1u);
  EXPECT_GE(monitor.preempt_requests(), 1u);
  EXPECT_EQ(metrics.counter("obs.preempts"), monitor.preempt_requests());

  // The preempted task was suspended (its first slice ended early) and
  // rescheduled: at least two slices, same verdict as every neighbour,
  // and the strengthening it produced still certifies independently.
  const mp::PropertyResult& pr = r.per_property[0];
  EXPECT_GE(pr.slices, 2);
  for (const mp::PropertyResult& each : r.per_property) {
    EXPECT_EQ(each.verdict, mp::PropertyVerdict::HoldsLocally);
  }
  ic3::CertificateCheck check = ic3::certify_strengthening(
      ts, /*prop=*/0, sched.assumptions_for(0), pr.invariant);
  EXPECT_TRUE(check.ok()) << check.failure;
}

}  // namespace
}  // namespace javer
