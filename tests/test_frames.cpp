// FrameSolver unit tests: the SAT-query layer beneath IC3 — bad-state
// queries, consecution with/without path constraints, core extraction,
// and the two lifting modes with their universal-cube guarantees.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "aig/sim.h"
#include "ic3/frames.h"

namespace javer::ic3 {
namespace {

// Fixture: 3-bit counter, P0: cnt != 5 (target), P1: cnt != 2 (assumable).
struct CounterFrames {
  CounterFrames() {
    aig::Builder b(aig);
    cnt = b.latch_word(3, Ternary::False, "cnt");
    b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
    aig.add_property(~b.eq_const(cnt, 5), "ne5");
    aig.add_property(~b.eq_const(cnt, 2), "ne2");
    ts = std::make_unique<ts::TransitionSystem>(aig);
  }
  FrameSolver::Config config(bool with_assumed, bool init_units) {
    FrameSolver::Config c;
    c.target_prop = 0;
    if (with_assumed) c.assumed = {1};
    c.init_units = init_units;
    return c;
  }
  static ts::Cube state_cube(int value) {
    ts::Cube c;
    for (int b = 0; b < 3; ++b) {
      c.push_back(ts::StateLit{b, ((value >> b) & 1) != 0});
    }
    return c;
  }
  aig::Aig aig;
  aig::Word cnt;
  std::unique_ptr<ts::TransitionSystem> ts;
};

TEST(FrameSolver, BadQueryFindsViolation) {
  CounterFrames fx;
  FrameSolver fs(*fx.ts, fx.config(false, false));
  // No frame clauses: some state with cnt==5 violates P0.
  ASSERT_EQ(fs.query_bad(), sat::SolveResult::Sat);
  auto state = fs.model_state();
  int v = state[0] + 2 * state[1] + 4 * state[2];
  EXPECT_EQ(v, 5);
}

TEST(FrameSolver, BadQueryUnsatAtInit) {
  CounterFrames fx;
  FrameSolver fs(*fx.ts, fx.config(false, /*init_units=*/true));
  // The initial state is cnt==0, which satisfies P0.
  EXPECT_EQ(fs.query_bad(), sat::SolveResult::Unsat);
}

TEST(FrameSolver, BlockingClauseRemovesBadState) {
  CounterFrames fx;
  FrameSolver fs(*fx.ts, fx.config(false, false));
  fs.add_blocking_clause(CounterFrames::state_cube(5));
  EXPECT_EQ(fs.query_bad(), sat::SolveResult::Unsat);
}

TEST(FrameSolver, ConsecutionUsesPathConstraints) {
  CounterFrames fx;
  // Target cube cnt==3. Its only predecessor is cnt==2, which the assumed
  // property forbids on non-final steps: consecution must be UNSAT with
  // the assumption, SAT without.
  ts::Cube three = CounterFrames::state_cube(3);
  {
    FrameSolver with(*fx.ts, fx.config(/*with_assumed=*/true, false));
    EXPECT_EQ(with.query_consecution(three, true, nullptr),
              sat::SolveResult::Unsat);
  }
  {
    FrameSolver without(*fx.ts, fx.config(/*with_assumed=*/false, false));
    EXPECT_EQ(without.query_consecution(three, true, nullptr),
              sat::SolveResult::Sat);
    auto pred = without.model_state();
    int v = pred[0] + 2 * pred[1] + 4 * pred[2];
    EXPECT_EQ(v, 2);
  }
}

TEST(FrameSolver, ConsecutionTargetPropertyOnPresentStep) {
  CounterFrames fx;
  // Pred of cnt==6 is cnt==5 = ¬P0 itself; the target property is part of
  // the path constraints, so consecution holds even with no assumptions.
  ts::Cube six = CounterFrames::state_cube(6);
  FrameSolver fs(*fx.ts, fx.config(false, false));
  EXPECT_EQ(fs.query_consecution(six, true, nullptr),
            sat::SolveResult::Unsat);
}

TEST(FrameSolver, ConsecutionCoreIsSufficient) {
  CounterFrames fx;
  // From init (cnt==0) the successor is cnt==1; target cube cnt==4 cannot
  // be hit, and a core over the next-state literals must exist.
  ts::Cube four = CounterFrames::state_cube(4);
  FrameSolver fs(*fx.ts, fx.config(false, /*init_units=*/true));
  std::vector<std::size_t> core;
  ASSERT_EQ(fs.query_consecution(four, true, &core),
            sat::SolveResult::Unsat);
  ASSERT_FALSE(core.empty());
  for (std::size_t idx : core) EXPECT_LT(idx, four.size());
  // The core-selected sub-cube must itself fail consecution-from-init:
  ts::Cube sub;
  for (std::size_t idx : core) sub.push_back(four[idx]);
  ts::sort_cube(sub);
  EXPECT_EQ(fs.query_consecution(sub, true, nullptr),
            sat::SolveResult::Unsat);
}

TEST(FrameSolver, LiftBadProducesUniversalCube) {
  CounterFrames fx;
  FrameSolver bad_finder(*fx.ts, fx.config(false, false));
  ASSERT_EQ(bad_finder.query_bad(), sat::SolveResult::Sat);
  auto state = bad_finder.model_state();
  auto inputs = bad_finder.model_inputs();

  FrameSolver lifter(*fx.ts, fx.config(false, false));
  ts::Cube cube = lifter.lift_bad(state, inputs);
  EXPECT_FALSE(cube.empty());
  // Universal property: every state in the cube violates P0 under these
  // inputs. Enumerate all 8 states and check by simulation.
  aig::Simulator sim(fx.aig);
  for (int v = 0; v < 8; ++v) {
    std::vector<bool> s{(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    if (!ts::cube_contains_state(cube, s)) continue;
    sim.eval(s, inputs);
    EXPECT_FALSE(sim.value(fx.ts->property_lit(0))) << "state " << v;
  }
}

TEST(FrameSolver, LiftPredecessorRespectVsIgnore) {
  // Design with an input-dependent assumed property so the two lifting
  // modes can actually differ: P1 (assumed) = !(in), target P0 = !(l).
  aig::Aig aig;
  aig::Lit in = aig.add_input("in");
  aig::Lit l = aig.add_latch(Ternary::False, "l");
  aig::Lit m = aig.add_latch(Ternary::False, "m");
  aig.set_latch_next(l, in);
  aig.set_latch_next(m, m);
  aig.add_property(~l, "target");
  aig.add_property(~in, "assumed");
  ts::TransitionSystem ts(aig);

  FrameSolver::Config config;
  config.target_prop = 0;
  config.assumed = {1};
  FrameSolver fs(ts, config);

  // Predecessor (l=0, m=1) with input in=1 drives into target cube {l=1}.
  std::vector<bool> state{false, true};
  std::vector<bool> inputs{true};
  ts::Cube target{{0, true}};

  ts::Cube ignore = fs.lift_predecessor(state, inputs, target, false);
  ts::Cube respect = fs.lift_predecessor(state, inputs, target, true);
  // Both lifted cubes must contain the concrete predecessor state.
  EXPECT_TRUE(ts::cube_contains_state(ignore, state));
  EXPECT_TRUE(ts::cube_contains_state(respect, state));
  // Ignore-mode drops everything (the transition depends only on the
  // input), respect-mode may keep more; at minimum it is never larger.
  EXPECT_LE(ignore.size(), respect.size() + 0u + 2u);  // sanity bound
}

TEST(FrameSolver, RetiredActivationsAccumulate) {
  CounterFrames fx;
  FrameSolver fs(*fx.ts, fx.config(false, false));
  int before = fs.retired_activations();
  fs.query_consecution(CounterFrames::state_cube(6), true, nullptr);
  fs.query_consecution(CounterFrames::state_cube(7), true, nullptr);
  EXPECT_EQ(fs.retired_activations(), before + 2);
}

}  // namespace
}  // namespace javer::ic3
