// BMC engine tests: CEX depths and traces cross-checked against the
// explicit-state reference, global and local ("just assume") modes.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "bmc/bmc.h"
#include "gen/counter.h"
#include "gen/random_design.h"
#include "ref/explicit_checker.h"

namespace javer::bmc {
namespace {

TEST(Bmc, ToggleFailsAtDepthOne) {
  aig::Aig aig;
  aig::Lit l = aig.add_latch(Ternary::False);
  aig.set_latch_next(l, ~l);
  aig.add_property(~l, "never_one");
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcResult r = bmc.run({0});
  ASSERT_EQ(r.status, CheckStatus::Fails);
  EXPECT_EQ(r.depth, 1);
  EXPECT_TRUE(ts::is_global_cex(ts, r.cex, 0));
}

TEST(Bmc, DepthZeroViolation) {
  aig::Aig aig;
  aig::Lit in = aig.add_input();
  aig::Lit l = aig.add_latch(Ternary::True);
  aig.set_latch_next(l, l);
  aig.add_property(~l, "latch_is_zero");  // fails at reset
  aig.add_property(in, "input_one");      // fails with input 0
  ts::TransitionSystem ts(aig);
  {
    Bmc bmc(ts);
    BmcResult r = bmc.run({0});
    ASSERT_EQ(r.status, CheckStatus::Fails);
    EXPECT_EQ(r.depth, 0);
    EXPECT_TRUE(ts::is_global_cex(ts, r.cex, 0));
  }
  {
    Bmc bmc(ts);
    BmcResult r = bmc.run({1});
    ASSERT_EQ(r.status, CheckStatus::Fails);
    EXPECT_EQ(r.depth, 0);
    EXPECT_TRUE(ts::is_global_cex(ts, r.cex, 1));
  }
}

TEST(Bmc, TruePropertyHitsMaxDepth) {
  aig::Aig aig;
  aig::Lit l = aig.add_latch(Ternary::False);
  aig.set_latch_next(l, l);
  aig.add_property(~l, "stays_zero");
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcOptions opts;
  opts.max_depth = 20;
  BmcResult r = bmc.run({0}, opts);
  EXPECT_EQ(r.status, CheckStatus::Unknown);
  EXPECT_EQ(r.frames_explored, 21);
}

TEST(Bmc, CounterGlobalCexDepthMatchesPaper) {
  // Table I: BMC needs 2^(n-1) time frames for P1 of the buggy counter.
  aig::Aig aig = gen::make_counter({.bits = 5, .buggy = true});
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcResult r = bmc.run({1});
  ASSERT_EQ(r.status, CheckStatus::Fails);
  EXPECT_EQ(r.depth, (1 << 4) + 1);
  EXPECT_TRUE(ts::is_global_cex(ts, r.cex, 1));
}

TEST(Bmc, LocalModeRespectsAssumptions) {
  // Buggy counter: P1 under assumption P0 (req==1) has no CEX — the
  // counter always resets. Global mode finds one.
  aig::Aig aig = gen::make_counter({.bits = 4, .buggy = true});
  ts::TransitionSystem ts(aig);
  {
    Bmc bmc(ts);
    BmcOptions opts;
    opts.max_depth = 40;
    opts.assumed = {0};
    BmcResult r = bmc.run({1}, opts);
    EXPECT_EQ(r.status, CheckStatus::Unknown) << "local cex should not exist";
  }
  {
    Bmc bmc(ts);
    BmcOptions opts;
    opts.max_depth = 40;
    BmcResult r = bmc.run({1}, opts);
    EXPECT_EQ(r.status, CheckStatus::Fails);
  }
}

TEST(Bmc, MultiTargetReportsFailingSubset) {
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 2), "p0");
  aig.add_property(~b.eq_const(cnt, 2), "p1");  // same failure point
  aig.add_property(~b.eq_const(cnt, 5), "p2");
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcResult r = bmc.run({0, 1, 2});
  ASSERT_EQ(r.status, CheckStatus::Fails);
  EXPECT_EQ(r.depth, 2);
  EXPECT_EQ(r.failed_targets, (std::vector<std::size_t>{0, 1}));
}

TEST(Bmc, DesignConstraintsRespected) {
  // Constraint forbids the only failing input, so no CEX exists.
  aig::Aig aig;
  aig::Lit in = aig.add_input();
  aig::Lit l = aig.add_latch();
  aig.set_latch_next(l, in);
  aig.add_property(~l, "never");
  aig.add_constraint(~in);
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcOptions opts;
  opts.max_depth = 10;
  BmcResult r = bmc.run({0}, opts);
  EXPECT_EQ(r.status, CheckStatus::Unknown);
}

TEST(Bmc, XResetLatchesAreFree)  {
  aig::Aig aig;
  aig::Lit l = aig.add_latch(Ternary::X);
  aig.set_latch_next(l, l);
  aig.add_property(~l, "zero");
  ts::TransitionSystem ts(aig);
  Bmc bmc(ts);
  BmcResult r = bmc.run({0});
  ASSERT_EQ(r.status, CheckStatus::Fails);
  EXPECT_EQ(r.depth, 0);
  EXPECT_TRUE(ts::is_global_cex(ts, r.cex, 0));
}

class BmcRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BmcRandomTest, DepthsMatchExplicitReference) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 5;
  spec.num_inputs = 3;
  spec.num_ands = 25;
  spec.num_properties = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    Bmc bmc(ts);
    BmcOptions opts;
    opts.max_depth = 70;  // > diameter of 2^5 states
    BmcResult r = bmc.run({p}, opts);
    if (expected.fails_globally(p)) {
      ASSERT_EQ(r.status, CheckStatus::Fails)
          << "seed " << GetParam() << " prop " << p;
      EXPECT_EQ(r.depth, expected.global_fail_depth[p])
          << "BMC must find the shallowest CEX";
      EXPECT_TRUE(ts::is_global_cex(ts, r.cex, p));
    } else {
      EXPECT_EQ(r.status, CheckStatus::Unknown)
          << "seed " << GetParam() << " prop " << p;
    }
  }
}

TEST_P(BmcRandomTest, LocalDepthsMatchExplicitReference) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam() + 500;
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 20;
  spec.num_properties = 3;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    std::vector<std::size_t> assumed;
    for (std::size_t j = 0; j < ts.num_properties(); ++j) {
      if (j != p) assumed.push_back(j);
    }
    Bmc bmc(ts);
    BmcOptions opts;
    opts.max_depth = 40;
    opts.assumed = assumed;
    BmcResult r = bmc.run({p}, opts);
    if (expected.fails_locally(p)) {
      ASSERT_EQ(r.status, CheckStatus::Fails)
          << "seed " << GetParam() + 500 << " prop " << p;
      EXPECT_EQ(r.depth, expected.local_fail_depth[p]);
      EXPECT_TRUE(ts::is_local_cex(ts, r.cex, p, assumed))
          << "local CEX must not break assumed properties early";
    } else {
      EXPECT_EQ(r.status, CheckStatus::Unknown)
          << "seed " << GetParam() + 500 << " prop " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmcRandomTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace javer::bmc
