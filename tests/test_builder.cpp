// Word-level builder tests: every helper is validated against integer
// semantics by 64-way simulation over random input patterns.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "aig/sim.h"
#include "base/rng.h"

namespace javer::aig {
namespace {

// Evaluates a word as an integer from a simulator pattern (bit `pattern`).
std::uint64_t word_value(const Simulator64& sim, const Word& w, int pattern) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if ((sim.value(w[i]) >> pattern) & 1) v |= std::uint64_t{1} << i;
  }
  return v;
}

class BuilderTest : public ::testing::Test {
 protected:
  Aig aig;
  Builder b{aig};
};

TEST_F(BuilderTest, GateLevelOps) {
  Lit x = aig.add_input();
  Lit y = aig.add_input();
  Lit ops[] = {b.land(x, y), b.lor(x, y),    b.lxor(x, y),
               b.lequiv(x, y), b.limplies(x, y), b.lmux(x, y, ~y)};
  Simulator64 sim(aig);
  // Four patterns: (x,y) in {00,01,10,11}.
  sim.eval({}, {0b1100, 0b1010});
  auto bit = [&](Lit l, int p) { return (sim.value(l) >> p) & 1; };
  for (int p = 0; p < 4; ++p) {
    bool xv = (p >> 1) & 1;
    bool yv = p & 1;
    EXPECT_EQ(bit(ops[0], p), static_cast<std::uint64_t>(xv && yv));
    EXPECT_EQ(bit(ops[1], p), static_cast<std::uint64_t>(xv || yv));
    EXPECT_EQ(bit(ops[2], p), static_cast<std::uint64_t>(xv != yv));
    EXPECT_EQ(bit(ops[3], p), static_cast<std::uint64_t>(xv == yv));
    EXPECT_EQ(bit(ops[4], p), static_cast<std::uint64_t>(!xv || yv));
    EXPECT_EQ(bit(ops[5], p), static_cast<std::uint64_t>(xv ? yv : !yv));
  }
}

TEST_F(BuilderTest, ConstantWord) {
  Word w = b.constant_word(0b1011, 6);
  Simulator64 sim(aig);
  sim.eval({}, {});
  EXPECT_EQ(word_value(sim, w, 0), 0b1011u);
}

TEST_F(BuilderTest, AddAndIncMatchIntegers) {
  constexpr std::size_t width = 8;
  Word x = b.input_word(width, "x");
  Word y = b.input_word(width, "y");
  Word sum = b.add_word(x, y);
  Word incx = b.inc_word(x, Lit::true_lit());

  javer::Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    std::uint64_t xv = rng.below(256);
    std::uint64_t yv = rng.below(256);
    std::vector<std::uint64_t> inputs;
    for (std::size_t i = 0; i < width; ++i) {
      inputs.push_back(((xv >> i) & 1) ? ~0ULL : 0);
    }
    for (std::size_t i = 0; i < width; ++i) {
      inputs.push_back(((yv >> i) & 1) ? ~0ULL : 0);
    }
    Simulator64 sim(aig);
    sim.eval({}, inputs);
    EXPECT_EQ(word_value(sim, sum, 0), (xv + yv) & 0xff);
    EXPECT_EQ(word_value(sim, incx, 0), (xv + 1) & 0xff);
  }
}

TEST_F(BuilderTest, ComparisonsMatchIntegers) {
  constexpr std::size_t width = 6;
  Word x = b.input_word(width, "x");
  Word y = b.input_word(width, "y");
  Lit eq5 = b.eq_const(x, 5);
  Lit le9 = b.ule_const(x, 9);
  Lit eqw = b.eq_word(x, y);
  Lit ltw = b.ult_word(x, y);

  for (std::uint64_t xv = 0; xv < 64; xv += 7) {
    for (std::uint64_t yv = 0; yv < 64; yv += 5) {
      std::vector<std::uint64_t> inputs;
      for (std::size_t i = 0; i < width; ++i) {
        inputs.push_back(((xv >> i) & 1) ? ~0ULL : 0);
      }
      for (std::size_t i = 0; i < width; ++i) {
        inputs.push_back(((yv >> i) & 1) ? ~0ULL : 0);
      }
      Simulator64 sim(aig);
      sim.eval({}, inputs);
      EXPECT_EQ(sim.value(eq5) & 1, static_cast<std::uint64_t>(xv == 5));
      EXPECT_EQ(sim.value(le9) & 1, static_cast<std::uint64_t>(xv <= 9));
      EXPECT_EQ(sim.value(eqw) & 1, static_cast<std::uint64_t>(xv == yv));
      EXPECT_EQ(sim.value(ltw) & 1, static_cast<std::uint64_t>(xv < yv));
    }
  }
}

TEST_F(BuilderTest, MuxAndBitwiseWords) {
  constexpr std::size_t width = 4;
  Word x = b.input_word(width);
  Word y = b.input_word(width);
  Lit s = aig.add_input();
  Word mx = b.mux_word(s, x, y);
  Word ax = b.and_word(x, y);
  Word ox = b.or_word(x, y);
  Word xx = b.xor_word(x, y);
  Word nx = b.not_word(x);

  for (int round = 0; round < 16; ++round) {
    std::uint64_t xv = round;
    std::uint64_t yv = 15 - round;
    for (bool sv : {false, true}) {
      std::vector<std::uint64_t> inputs;
      for (std::size_t i = 0; i < width; ++i) {
        inputs.push_back(((xv >> i) & 1) ? ~0ULL : 0);
      }
      for (std::size_t i = 0; i < width; ++i) {
        inputs.push_back(((yv >> i) & 1) ? ~0ULL : 0);
      }
      inputs.push_back(sv ? ~0ULL : 0);
      Simulator64 sim(aig);
      sim.eval({}, inputs);
      EXPECT_EQ(word_value(sim, mx, 0), sv ? xv : yv);
      EXPECT_EQ(word_value(sim, ax, 0), xv & yv);
      EXPECT_EQ(word_value(sim, ox, 0), xv | yv);
      EXPECT_EQ(word_value(sim, xx, 0), xv ^ yv);
      EXPECT_EQ(word_value(sim, nx, 0), (~xv) & 0xf);
    }
  }
}

TEST_F(BuilderTest, LatchWordAndSetNext) {
  Word regs = b.latch_word(3, Ternary::False, "r");
  Word next = b.inc_word(regs, Lit::true_lit());
  b.set_next(regs, next);
  EXPECT_EQ(aig.num_latches(), 3u);
  // Counting from 0: after eval of state=5 next must be 6.
  Simulator64 sim(aig);
  sim.eval({~0ULL & 1, 0, ~0ULL & 1}, {});  // state = 0b101 = 5
  auto ns = sim.next_state();
  std::uint64_t v = (ns[0] & 1) | ((ns[1] & 1) << 1) | ((ns[2] & 1) << 2);
  EXPECT_EQ(v, 6u);
}

TEST_F(BuilderTest, SetNextWidthMismatchThrows) {
  Word regs = b.latch_word(3);
  Word next = b.constant_word(0, 2);
  EXPECT_THROW(b.set_next(regs, next), std::invalid_argument);
}

TEST_F(BuilderTest, AndOrMany) {
  std::vector<Lit> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(aig.add_input());
  Lit all = b.land_many(ins);
  Lit any = b.lor_many(ins);
  Simulator64 sim(aig);
  sim.eval({}, {~0ULL, ~0ULL, ~0ULL, ~0ULL, 0b10});
  EXPECT_EQ(sim.value(all) & 1, 0u);       // pattern 0: last input 0
  EXPECT_EQ((sim.value(all) >> 1) & 1, 1u);  // pattern 1: all inputs 1
  EXPECT_EQ(sim.value(any) & 1, 1u);
  EXPECT_EQ(b.land_many({}), Lit::true_lit());
  EXPECT_EQ(b.lor_many({}), Lit::false_lit());
}

}  // namespace
}  // namespace javer::aig
