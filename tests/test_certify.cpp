// Certificate checker tests: genuine IC3 proofs certify; tampered or
// wrong invariants are rejected with the specific failing condition.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "gen/counter.h"
#include "gen/random_design.h"
#include "ic3/certify.h"
#include "ic3/ic3.h"
#include "mp/ja_verifier.h"
#include "ref/explicit_checker.h"

namespace javer::ic3 {
namespace {

// Saturating-counter fixture with a known-good strengthening.
struct Fixture {
  Fixture() {
    aig::Builder b(aig);
    aig::Word scnt = b.latch_word(4);
    b.set_next(scnt, b.mux_word(scnt.back(), scnt,
                                b.inc_word(scnt, aig::Lit::true_lit())));
    aig.add_property(~b.eq_const(scnt, 11), "p");
    ts = std::make_unique<ts::TransitionSystem>(aig);
    Ic3 engine(*ts, 0);
    result = engine.run();
  }
  aig::Aig aig;
  std::unique_ptr<ts::TransitionSystem> ts;
  Ic3Result result;
};

TEST(Certify, GenuineProofCertifies) {
  Fixture fx;
  ASSERT_EQ(fx.result.status, CheckStatus::Holds);
  CertificateCheck check =
      certify_strengthening(*fx.ts, 0, {}, fx.result.invariant);
  EXPECT_TRUE(check.ok()) << check.failure;
  EXPECT_TRUE(check.initiation);
  EXPECT_TRUE(check.consecution);
  EXPECT_TRUE(check.safety);
}

TEST(Certify, EmptyInvariantFailsSafetyForNonTrivialProperty) {
  Fixture fx;
  // An empty strengthening claims "true is inductive and implies P":
  // consecution trivially holds, safety must fail (bad states exist).
  CertificateCheck check = certify_strengthening(*fx.ts, 0, {}, {});
  EXPECT_TRUE(check.initiation);
  EXPECT_TRUE(check.consecution);
  EXPECT_FALSE(check.safety);
  EXPECT_FALSE(check.ok());
  EXPECT_FALSE(check.failure.empty());
}

TEST(Certify, InitIntersectingCubeRejected) {
  Fixture fx;
  auto tampered = fx.result.invariant;
  // A cube matching the all-zero reset state violates initiation.
  tampered.push_back(ts::Cube{{0, false}, {1, false}, {2, false}, {3, false}});
  CertificateCheck check = certify_strengthening(*fx.ts, 0, {}, tampered);
  EXPECT_FALSE(check.initiation);
  EXPECT_FALSE(check.ok());
}

TEST(Certify, NonInductiveClauseRejected) {
  Fixture fx;
  auto tampered = fx.result.invariant;
  // Blocking a reachable state breaks consecution (or initiation if it
  // were initial; scnt==1 is reachable and not initial).
  tampered.push_back(
      ts::Cube{{0, true}, {1, false}, {2, false}, {3, false}});
  CertificateCheck check = certify_strengthening(*fx.ts, 0, {}, tampered);
  EXPECT_TRUE(check.initiation);
  EXPECT_FALSE(check.consecution);
  EXPECT_FALSE(check.ok());
}

TEST(Certify, LocalProofCertifiesOnlyWithItsAssumptions) {
  // Example 1: P1's local strengthening needs the P0 assumption; without
  // it the certificate must be rejected.
  aig::Aig aig = gen::make_counter({.bits = 6, .buggy = true});
  ts::TransitionSystem ts(aig);
  Ic3Options opts;
  opts.assumed = {0};
  Ic3 engine(ts, 1, opts);
  Ic3Result r = engine.run();
  ASSERT_EQ(r.status, CheckStatus::Holds);

  EXPECT_TRUE(certify_strengthening(ts, 1, {0}, r.invariant).ok());
  CertificateCheck without = certify_strengthening(ts, 1, {}, r.invariant);
  EXPECT_FALSE(without.ok())
      << "the wrong-assumption proof must not certify globally";
}

TEST(Certify, EveryJaProofOfRandomDesignsCertifies) {
  for (std::uint64_t seed = 800; seed < 815; ++seed) {
    gen::RandomDesignSpec spec;
    spec.seed = seed;
    spec.num_properties = 3;
    aig::Aig aig = gen::make_random_design(spec);
    ts::TransitionSystem ts(aig);
    mp::JaVerifier ja(ts);
    mp::MultiResult result = ja.run();
    for (std::size_t p = 0; p < ts.num_properties(); ++p) {
      const mp::PropertyResult& pr = result.per_property[p];
      if (pr.verdict != mp::PropertyVerdict::HoldsLocally) continue;
      std::vector<std::size_t> assumed;
      for (std::size_t j = 0; j < ts.num_properties(); ++j) {
        if (j != p) assumed.push_back(j);
      }
      CertificateCheck check =
          certify_strengthening(ts, p, assumed, pr.invariant);
      EXPECT_TRUE(check.ok())
          << "seed " << seed << " prop " << p << ": " << check.failure;
    }
  }
}

}  // namespace
}  // namespace javer::ic3
