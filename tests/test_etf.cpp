// Expected-To-Fail handling (paper Section 5): ETF properties are never
// assumed, so their failures do not mask other properties, and a CEX for
// an ETF property must not break any ETH property first.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "mp/separate_verifier.h"
#include "ref/explicit_checker.h"
#include "ts/trace.h"

namespace javer::mp {
namespace {

// Design: counter with
//   P0 (ETF): "cnt != 2"  — a cover-style property, fails at depth 2;
//   P1 (ETH): "cnt != 4"  — fails at depth 4.
// Without ETF handling, P0's deterministic failure at depth 2 would mask
// P1; with it, P1 must still be found failing (it enters the debugging
// set among ETH properties).
struct EtfFixture {
  EtfFixture() {
    aig::Builder b(aig);
    aig::Word cnt = b.latch_word(3);
    b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
    aig.add_property(~b.eq_const(cnt, 2), "cover_2", /*etf=*/true);
    aig.add_property(~b.eq_const(cnt, 4), "safety_4", /*etf=*/false);
    ts = std::make_unique<ts::TransitionSystem>(aig);
  }
  aig::Aig aig;
  std::unique_ptr<ts::TransitionSystem> ts;
};

TEST(Etf, EtfFailureDoesNotMaskEthProperty) {
  EtfFixture fx;
  SeparateOptions opts;
  opts.local_proofs = true;
  SeparateVerifier verifier(*fx.ts, opts);
  MultiResult result = verifier.run();

  // The ETF property gets its counterexample.
  EXPECT_EQ(result.per_property[0].verdict, PropertyVerdict::FailsLocally);
  EXPECT_EQ(result.per_property[0].cex.length(), 2u);
  // The ETH property is NOT masked by the earlier ETF failure.
  EXPECT_EQ(result.per_property[1].verdict, PropertyVerdict::FailsLocally);
  EXPECT_EQ(result.per_property[1].cex.length(), 4u);
  // Its CEX does not break the ETH assumption set (which is empty besides
  // itself) — and in particular analysis confirms the trace shape.
  ts::TraceAnalysis a = ts::analyze_trace(*fx.ts, result.per_property[1].cex);
  EXPECT_EQ(a.first_failure[1], 4);
}

TEST(Etf, EthCexMustNotBreakEthPropertiesButMayBreakEtf) {
  EtfFixture fx;
  SeparateOptions opts;
  SeparateVerifier verifier(*fx.ts, opts);
  MultiResult result = verifier.run();
  // P1's CEX passes through cnt==2 (the ETF failure point) — allowed.
  ts::TraceAnalysis a = ts::analyze_trace(*fx.ts, result.per_property[1].cex);
  EXPECT_EQ(a.first_failure[0], 2)
      << "the ETF property fails mid-trace, which Section 5 permits";
}

TEST(Etf, WithoutEtfMarkTheSamePropertyIsMasked) {
  // Control experiment: same design with both properties ETH — now the
  // deterministic depth-2 failure masks the depth-4 one.
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 2), "p0");
  aig.add_property(~b.eq_const(cnt, 4), "p1");
  ts::TransitionSystem ts(aig);

  SeparateVerifier verifier(ts, SeparateOptions{});
  MultiResult result = verifier.run();
  EXPECT_EQ(result.per_property[0].verdict, PropertyVerdict::FailsLocally);
  EXPECT_EQ(result.per_property[1].verdict, PropertyVerdict::HoldsLocally)
      << "without the ETF mark, p0 masks p1";
}

TEST(Etf, ReferenceCheckerAgrees) {
  EtfFixture fx;
  // The oracle with ETH-only assumptions: both properties fail locally.
  ref::ExplicitResult r = ref::explicit_check(*fx.ts);
  EXPECT_EQ(r.local_fail_depth[0], 2);
  EXPECT_EQ(r.local_fail_depth[1], 4);
}

TEST(Etf, EtfPropertyCanStillHoldLocally) {
  // An ETF property that cannot fail without breaking an ETH property
  // first: its local check comes back Holds — valuable information (the
  // cover target is unreachable without violating assumptions).
  aig::Aig aig;
  aig::Builder b(aig);
  aig::Word cnt = b.latch_word(3);
  b.set_next(cnt, b.inc_word(cnt, aig::Lit::true_lit()));
  aig.add_property(~b.eq_const(cnt, 2), "eth_2", /*etf=*/false);
  aig.add_property(~b.eq_const(cnt, 4), "etf_4", /*etf=*/true);
  ts::TransitionSystem ts(aig);
  SeparateVerifier verifier(ts, SeparateOptions{});
  MultiResult result = verifier.run();
  EXPECT_EQ(result.per_property[0].verdict, PropertyVerdict::FailsLocally);
  EXPECT_EQ(result.per_property[1].verdict, PropertyVerdict::HoldsLocally)
      << "every path to cnt==4 passes cnt==2, which ETH forbids";
}

}  // namespace
}  // namespace javer::mp
