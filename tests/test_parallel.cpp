// ParallelJaVerifier tests: verdict equivalence with the sequential
// verifier, shared clause DB, thread-count configurations.
#include <gtest/gtest.h>

#include "gen/random_design.h"
#include "gen/synthetic.h"
#include "mp/parallel_ja.h"
#include "ref/explicit_checker.h"

namespace javer::mp {
namespace {

class ParallelRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelRandomTest, VerdictsMatchOracle) {
  gen::RandomDesignSpec spec;
  spec.seed = GetParam();
  spec.num_latches = 4;
  spec.num_inputs = 2;
  spec.num_ands = 18;
  spec.num_properties = 6;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ref::ExplicitResult expected = ref::explicit_check(ts);

  ParallelJaOptions opts;
  opts.num_threads = 4;
  ParallelJaVerifier parallel(ts, opts);
  MultiResult result = parallel.run();

  ASSERT_EQ(result.per_property.size(), ts.num_properties());
  EXPECT_EQ(result.debugging_set(), expected.debugging_set())
      << "seed " << GetParam();
  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    PropertyVerdict v = result.per_property[p].verdict;
    if (expected.fails_locally(p)) {
      EXPECT_EQ(v, PropertyVerdict::FailsLocally) << "prop " << p;
    } else {
      EXPECT_EQ(v, PropertyVerdict::HoldsLocally) << "prop " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandomTest,
                         ::testing::Range<std::uint64_t>(300, 315));

TEST(ParallelJa, SingleThreadEqualsMultiThread) {
  gen::RandomDesignSpec spec;
  spec.seed = 77;
  spec.num_properties = 6;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);

  ParallelJaOptions one;
  one.num_threads = 1;
  ParallelJaOptions many;
  many.num_threads = 8;
  MultiResult a = ParallelJaVerifier(ts, one).run();
  MultiResult b = ParallelJaVerifier(ts, many).run();
  ASSERT_EQ(a.per_property.size(), b.per_property.size());
  for (std::size_t p = 0; p < a.per_property.size(); ++p) {
    EXPECT_EQ(a.per_property[p].verdict, b.per_property[p].verdict)
        << "prop " << p;
  }
}

TEST(ParallelJa, RingDesignAllProvedOneFrame) {
  // The Table X design: every adjacency property of a one-hot ring is
  // one-frame provable locally; the parallel verifier must prove all.
  aig::Aig aig = gen::make_ring(12);
  ts::TransitionSystem ts(aig);
  ParallelJaOptions opts;
  opts.num_threads = 4;
  ParallelJaVerifier parallel(ts, opts);
  MultiResult result = parallel.run();
  for (std::size_t p = 0; p < ts.num_properties(); ++p) {
    EXPECT_EQ(result.per_property[p].verdict, PropertyVerdict::HoldsLocally)
        << "prop " << p;
    EXPECT_LE(result.per_property[p].frames, 1) << "prop " << p;
  }
}

TEST(ParallelJa, SharedClauseDbSeesAllThreads) {
  gen::RandomDesignSpec spec;
  spec.seed = 88;
  spec.num_properties = 8;
  spec.weaken_percent = 95;
  aig::Aig aig = gen::make_random_design(spec);
  ts::TransitionSystem ts(aig);
  ClauseDb db;
  ParallelJaOptions opts;
  opts.num_threads = 4;
  ParallelJaVerifier parallel(ts, opts);
  MultiResult result = parallel.run(db);
  EXPECT_EQ(result.num_unsolved(), 0u);
  EXPECT_EQ(db.snapshot().size(), db.size());
}

}  // namespace
}  // namespace javer::mp
