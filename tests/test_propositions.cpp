// Semantic validation of the paper's Propositions 1-6 on random designs,
// using the exact explicit-state checker (and engines where stated).
// These are the paper's core theory claims; each test names the
// proposition it checks.
#include <gtest/gtest.h>

#include "aig/builder.h"
#include "aig/sim.h"
#include "gen/random_design.h"
#include "ic3/ic3.h"
#include "mp/joint_verifier.h"
#include "ref/explicit_checker.h"
#include "ts/trace.h"

namespace javer {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t props = 3) {
    gen::RandomDesignSpec spec;
    spec.seed = seed;
    spec.num_latches = 4;
    spec.num_inputs = 2;
    spec.num_ands = 18;
    spec.num_properties = props;
    aig = gen::make_random_design(spec);
    ts = std::make_unique<ts::TransitionSystem>(aig);
    result = ref::explicit_check(*ts);
  }
  aig::Aig aig;
  std::unique_ptr<ts::TransitionSystem> ts;
  ref::ExplicitResult result;
};

class PropositionTest : public ::testing::TestWithParam<std::uint64_t> {};

// Proposition 2A: if Q holds w.r.t. T (globally), it holds w.r.t. T_P
// (locally). Equivalently: fails locally => fails globally.
TEST_P(PropositionTest, Prop2A_LocalFailureImpliesGlobalFailure) {
  Fixture fx(GetParam());
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) {
    if (fx.result.fails_locally(p)) {
      EXPECT_TRUE(fx.result.fails_globally(p))
          << "seed " << GetParam() << " prop " << p;
      // The shallowest local failure cannot be shallower than the
      // shallowest global one (every T_P trace is a T trace).
      EXPECT_LE(fx.result.global_fail_depth[p],
                fx.result.local_fail_depth[p]);
    }
  }
}

// Proposition 2B: if Q holds locally but fails globally, every global CEX
// falsifies the aggregate property strictly before its final step.
// (Checked on the shallowest CEX found by IC3.)
TEST_P(PropositionTest, Prop2B_MaskedFailureBreaksAggregateEarlier) {
  Fixture fx(GetParam() + 3000);
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) {
    if (!fx.result.fails_globally(p) || fx.result.fails_locally(p)) continue;
    ic3::Ic3 engine(*fx.ts, p);
    ic3::Ic3Result r = engine.run();
    ASSERT_EQ(r.status, CheckStatus::Fails);
    ts::TraceAnalysis a = ts::analyze_trace(*fx.ts, r.cex);
    int final_step = static_cast<int>(r.cex.steps.size()) - 1;
    bool another_fails_strictly_before = false;
    for (std::size_t j = 0; j < fx.ts->num_properties(); ++j) {
      if (j == p) continue;
      if (a.first_failure[j] >= 0 && a.first_failure[j] < final_step) {
        another_fails_strictly_before = true;
      }
    }
    EXPECT_TRUE(another_fails_strictly_before)
        << "seed " << GetParam() + 3000 << " prop " << p
        << ": a masked property's CEX must break another property first";
  }
}

// Propositions 3-5: the aggregate property holds w.r.t. T iff every Pi
// holds w.r.t. T_P (all-local-holds <=> all-global-holds).
TEST_P(PropositionTest, Prop5_AllLocalIffAllGlobal) {
  Fixture fx(GetParam() + 6000);
  bool any_local_fail = false;
  bool any_global_fail = false;
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) {
    any_local_fail |= fx.result.fails_locally(p);
    any_global_fail |= fx.result.fails_globally(p);
  }
  EXPECT_EQ(any_local_fail, any_global_fail) << "seed " << GetParam() + 6000;
}

// Proposition 6: for every CEX of the aggregate property, the final state
// falsifies at least one member of the debugging set. Checked with the
// aggregate CEX produced by IC3.
TEST_P(PropositionTest, Prop6_DebuggingSetExplainsAggregateCex) {
  Fixture fx(GetParam() + 9000);
  std::vector<std::size_t> all;
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) all.push_back(p);
  auto debug_set = fx.result.debugging_set();
  if (debug_set.empty()) return;  // aggregate holds; nothing to check

  auto [agg_aig, agg_index] = mp::make_aggregate(fx.aig, all);
  ts::TransitionSystem agg_ts(agg_aig);
  ic3::Ic3 engine(agg_ts, agg_index);
  ic3::Ic3Result r = engine.run();
  ASSERT_EQ(r.status, CheckStatus::Fails) << "seed " << GetParam() + 9000;

  // Evaluate which original properties the final step falsifies.
  aig::Simulator sim(fx.aig);
  const ts::Step& last = r.cex.steps.back();
  sim.eval(last.state, last.inputs);
  bool hits_debug_set = false;
  for (std::size_t d : debug_set) {
    if (!sim.value(fx.ts->property_lit(d))) hits_debug_set = true;
  }
  EXPECT_TRUE(hits_debug_set)
      << "seed " << GetParam() + 9000
      << ": aggregate CEX final state must falsify a debugging-set member";
}

// Proposition 1 (engine-level): if the aggregate property is inductive,
// every weaker property is provable locally with no counterexample — here
// instantiated with designs where the aggregate holds.
TEST_P(PropositionTest, Prop1_WeakerPropertiesInductiveUnderProjection) {
  Fixture fx(GetParam() + 12000);
  bool all_hold = true;
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) {
    all_hold &= !fx.result.fails_globally(p);
  }
  if (!all_hold) return;
  for (std::size_t p = 0; p < fx.ts->num_properties(); ++p) {
    std::vector<std::size_t> assumed;
    for (std::size_t j = 0; j < fx.ts->num_properties(); ++j) {
      if (j != p) assumed.push_back(j);
    }
    ic3::Ic3Options opts;
    opts.assumed = assumed;
    ic3::Ic3 engine(*fx.ts, p, opts);
    EXPECT_EQ(engine.run().status, CheckStatus::Holds)
        << "seed " << GetParam() + 12000 << " prop " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropositionTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace javer
