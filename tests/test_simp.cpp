// Simplification subsystem tests: equisatisfiability + model
// reconstruction fuzzing against the reference DPLL (≥500 random CNFs),
// unit-level checks of subsumption / self-subsuming resolution / bounded
// variable elimination, VarRemapper compaction, DIMACS roundtrips, and
// preprocessing-enabled engine runs agreeing with plain ones.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "aig/aig.h"
#include "base/rng.h"
#include "bmc/bmc.h"
#include "gen/counter.h"
#include "gen/synthetic.h"
#include "mp/separate_verifier.h"
#include "sat/dimacs.h"
#include "sat/ref_dpll.h"
#include "sat/simp/preprocessor.h"
#include "sat/simp/simplifier.h"
#include "sat/simp/var_remapper.h"
#include "sat/solver.h"

namespace javer::sat {
namespace {

Cnf random_cnf(Rng& rng, int num_vars, int num_clauses, int max_len) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    int len = 1 + static_cast<int>(rng.below(max_len));
    std::vector<Lit> clause;
    for (int i = 0; i < len; ++i) {
      Var v = static_cast<Var>(rng.below(num_vars));
      clause.push_back(Lit::make(v, rng.chance(1, 2)));
    }
    cnf.clauses.push_back(clause);
  }
  return cnf;
}

// Simplify + compact + CDCL-solve `cnf`; on Sat, reconstruct a full model
// of the original formula. Returns the solver verdict.
SolveResult simplify_and_solve(const Cnf& original, simp::SimplifyConfig cfg,
                               const std::vector<Var>& frozen,
                               std::vector<bool>* out_model) {
  Cnf work = original;
  simp::Simplifier simplifier(cfg);
  for (Var v : frozen) simplifier.freeze(v);
  if (!simplifier.simplify(work)) return SolveResult::Unsat;

  simp::VarRemapper remap = simp::VarRemapper::compact(work);
  Solver solver;
  for (int v = 0; v < work.num_vars; ++v) solver.new_var();
  bool trivially_unsat = false;
  for (const auto& clause : work.clauses) {
    if (!solver.add_clause(clause)) trivially_unsat = true;
  }
  SolveResult res = trivially_unsat ? SolveResult::Unsat : solver.solve();
  if (res != SolveResult::Sat || out_model == nullptr) return res;

  std::vector<Value> compact(work.num_vars, kUndef);
  for (int v = 0; v < work.num_vars; ++v) compact[v] = solver.model_value(v);
  std::vector<Value> model = remap.lift_model(compact);
  simplifier.extend_model(model);
  out_model->assign(original.num_vars, false);
  for (int v = 0; v < original.num_vars; ++v) {
    (*out_model)[v] = model[v] == kTrue;
  }
  return res;
}

TEST(SimplifierFuzz, EquisatAndModelReconstruction) {
  // ≥500 random CNFs around and below the phase transition; the
  // Simplifier+CDCL verdict must agree with the reference DPLL, and every
  // reconstructed model must satisfy the *original* clauses.
  int sat_seen = 0;
  int unsat_seen = 0;
  for (std::uint64_t round = 0; round < 520; ++round) {
    Rng rng(round * 0x9e37 + 17);
    int num_vars = 5 + static_cast<int>(rng.below(20));
    // Mostly width-2..4 clauses with an occasional unit, at densities
    // straddling the phase transition so both verdicts appear often.
    double density = 1.2 + rng.uniform() * 3.0;
    int num_clauses = static_cast<int>(num_vars * density);
    Cnf cnf;
    cnf.num_vars = num_vars;
    for (int c = 0; c < num_clauses; ++c) {
      int len = rng.chance(1, 12) ? 1 : 2 + static_cast<int>(rng.below(3));
      std::vector<Lit> clause;
      for (int i = 0; i < len; ++i) {
        Var v = static_cast<Var>(rng.below(num_vars));
        clause.push_back(Lit::make(v, rng.chance(1, 2)));
      }
      cnf.clauses.push_back(clause);
    }

    // A random sprinkling of frozen variables, as an incremental caller
    // would have.
    std::vector<Var> frozen;
    for (Var v = 0; v < cnf.num_vars; ++v) {
      if (rng.chance(1, 4)) frozen.push_back(v);
    }

    simp::SimplifyConfig cfg;
    cfg.growth_limit = static_cast<int>(rng.below(3));
    std::vector<bool> model;
    SolveResult res = simplify_and_solve(cnf, cfg, frozen, &model);

    auto ref = ref_dpll_solve(cnf.num_vars, cnf.clauses);
    if (ref.has_value()) {
      sat_seen++;
      ASSERT_EQ(res, SolveResult::Sat) << "round " << round;
      EXPECT_TRUE(ref_check_model(cnf.clauses, model)) << "round " << round;
    } else {
      unsat_seen++;
      ASSERT_EQ(res, SolveResult::Unsat) << "round " << round;
    }
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(sat_seen, 50);
  EXPECT_GT(unsat_seen, 50);
}

TEST(Simplifier, SubsumptionRemovesWeakerClauses) {
  Cnf cnf;
  cnf.num_vars = 3;
  Lit a = Lit::make(0), b = Lit::make(1), c = Lit::make(2);
  cnf.add_clause({a, b});
  cnf.add_clause({a, b, c});  // subsumed
  simp::Simplifier s;
  for (Var v = 0; v < 3; ++v) s.freeze(v);
  ASSERT_TRUE(s.simplify(cnf));
  EXPECT_EQ(s.stats().clauses_subsumed, 1u);
  EXPECT_EQ(cnf.clauses.size(), 1u);
}

TEST(Simplifier, SelfSubsumingResolutionStrengthens) {
  Cnf cnf;
  cnf.num_vars = 3;
  Lit a = Lit::make(0), b = Lit::make(1), c = Lit::make(2);
  cnf.add_clause({a, b, c});   // strengthened to {b, c} by {~a, b}
  cnf.add_clause({~a, b});
  simp::Simplifier s;
  for (Var v = 0; v < 3; ++v) s.freeze(v);
  ASSERT_TRUE(s.simplify(cnf));
  EXPECT_GE(s.stats().clauses_strengthened, 1u);
  for (const auto& clause : cnf.clauses) {
    EXPECT_LE(clause.size(), 2u);
  }
}

TEST(Simplifier, EliminatesUnfrozenAuxiliaries) {
  // g <-> a & b (Tseitin), g frozen nowhere: eliminating g must keep the
  // projection onto {a, b} intact.
  Cnf cnf;
  cnf.num_vars = 3;
  Lit a = Lit::make(0), b = Lit::make(1), g = Lit::make(2);
  cnf.add_clause({~g, a});
  cnf.add_clause({~g, b});
  cnf.add_clause({g, ~a, ~b});
  cnf.add_clause({g});  // force the gate on: a & b must hold
  simp::Simplifier s;
  s.freeze(a);
  s.freeze(b);
  ASSERT_TRUE(s.simplify(cnf));
  EXPECT_TRUE(s.is_eliminated(2));

  // Remaining formula forces a and b true.
  Solver solver;
  for (int v = 0; v < 3; ++v) solver.new_var();
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model_value(Var{0}), kTrue);
  EXPECT_EQ(solver.model_value(Var{1}), kTrue);

  // And the eliminated gate reconstructs to true.
  std::vector<Value> model(3, kUndef);
  model[0] = kTrue;
  model[1] = kTrue;
  s.extend_model(model);
  EXPECT_EQ(model[2], kTrue);
}

TEST(Simplifier, DetectsTopLevelContradiction) {
  Cnf cnf;
  cnf.num_vars = 1;
  Lit a = Lit::make(0);
  cnf.add_clause({a});
  cnf.add_clause({~a});
  simp::Simplifier s;
  EXPECT_FALSE(s.simplify(cnf));
}

TEST(Simplifier, FrozenVariablesSurviveWithTheirUnits) {
  Cnf cnf;
  cnf.num_vars = 2;
  Lit a = Lit::make(0), b = Lit::make(1);
  cnf.add_clause({a});
  cnf.add_clause({~a, b});
  simp::Simplifier s;
  s.freeze(a);
  s.freeze(b);
  ASSERT_TRUE(s.simplify(cnf));
  // Both variables are fixed; their values must stay visible as units.
  Solver solver;
  solver.new_var();
  solver.new_var();
  for (const auto& clause : cnf.clauses) solver.add_clause(clause);
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model_value(Var{0}), kTrue);
  EXPECT_EQ(solver.model_value(Var{1}), kTrue);
}

TEST(Simplifier, EliminableFloorProtectsSharedVariables) {
  // Var 0 predates the batch (floor 1): it must not be eliminated even
  // though it is unfrozen.
  Cnf cnf;
  cnf.num_vars = 2;
  Lit shared = Lit::make(0), aux = Lit::make(1);
  cnf.add_clause({shared, aux});
  cnf.add_clause({shared, ~aux});
  simp::Simplifier s;
  s.set_eliminable_floor(1);
  ASSERT_TRUE(s.simplify(cnf));
  EXPECT_FALSE(s.is_eliminated(0));
  // Resolving away the auxiliary fixes var 0; its unit must stay visible
  // because clauses committed before this batch may mention it.
  bool unit_present = false;
  for (const auto& clause : cnf.clauses) {
    if (clause.size() == 1 && clause[0] == shared) unit_present = true;
  }
  EXPECT_TRUE(unit_present);
}

TEST(VarRemapper, CompactsAndLiftsModels) {
  Cnf cnf;
  cnf.num_vars = 10;
  Lit a = Lit::make(2), b = Lit::make(7);
  cnf.add_clause({a, ~b});
  simp::VarRemapper m = simp::VarRemapper::compact(cnf);
  EXPECT_EQ(cnf.num_vars, 2);
  EXPECT_EQ(m.num_old_vars(), 10);
  EXPECT_EQ(m.old_to_new(2), 0);
  EXPECT_EQ(m.old_to_new(7), 1);
  EXPECT_EQ(m.old_to_new(0), kNoVar);
  EXPECT_EQ(m.new_to_old(1), 7);

  std::vector<Value> compact{kTrue, kFalse};
  std::vector<Value> lifted = m.lift_model(compact);
  ASSERT_EQ(lifted.size(), 10u);
  EXPECT_EQ(lifted[2], kTrue);
  EXPECT_EQ(lifted[7], kFalse);
  EXPECT_EQ(lifted[0], kUndef);
}

TEST(Dimacs, ReadWriteReadRoundtrip) {
  Rng rng(42);
  Cnf cnf = random_cnf(rng, 12, 30, 4);
  std::ostringstream first;
  write_dimacs(first, cnf);

  std::istringstream in(first.str());
  Cnf back = read_dimacs(in);
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]) << "clause " << i;
  }

  std::ostringstream second;
  write_dimacs(second, back);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Preprocessor, PassesThroughWhenDisabled) {
  Solver solver;
  simp::Preprocessor pre(solver, /*enabled=*/false);
  Var a = pre.new_var();
  Var b = pre.new_var();
  pre.add_clause({Lit::make(a), Lit::make(b)});
  pre.add_unit(~Lit::make(a));
  ASSERT_TRUE(pre.flush());
  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model_value(b), kTrue);
}

TEST(Preprocessor, BatchSimplifiesBehindFrozenInterface) {
  Solver solver;
  simp::Preprocessor pre(solver, /*enabled=*/true);
  Var a = pre.new_var();
  Var b = pre.new_var();
  Var g = pre.new_var();  // batch-local auxiliary: g <-> a & b
  pre.add_clause({~Lit::make(g), Lit::make(a)});
  pre.add_clause({~Lit::make(g), Lit::make(b)});
  pre.add_clause({Lit::make(g), ~Lit::make(a), ~Lit::make(b)});
  pre.add_unit(Lit::make(g));
  pre.freeze(a);
  pre.freeze(b);
  ASSERT_TRUE(pre.flush());
  EXPECT_GE(pre.stats().vars_eliminated + pre.stats().vars_fixed, 1u);

  ASSERT_EQ(solver.solve(), SolveResult::Sat);
  EXPECT_EQ(solver.model_value(a), kTrue);
  EXPECT_EQ(solver.model_value(b), kTrue);
  // Assumptions over frozen literals still work after the batch.
  EXPECT_EQ(solver.solve({~Lit::make(a)}), SolveResult::Unsat);
}

}  // namespace
}  // namespace javer::sat

namespace javer {
namespace {

TEST(SimplifyEngines, BmcAgreesWithPlainRun) {
  gen::CounterSpec spec;
  spec.bits = 5;
  aig::Aig design = gen::make_counter(spec);
  ts::TransitionSystem ts(design);

  bmc::BmcOptions plain;
  plain.max_depth = 80;
  bmc::BmcOptions simp_opts = plain;
  simp_opts.simplify = true;

  bmc::Bmc bmc_plain(ts);
  bmc::BmcResult a = bmc_plain.run({0}, plain);
  bmc::Bmc bmc_simp(ts);
  bmc::BmcResult b = bmc_simp.run({0}, simp_opts);

  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.depth, b.depth);
  if (b.status == CheckStatus::Fails) {
    EXPECT_TRUE(ts::is_global_cex(ts, b.cex, 0));
  }
}

TEST(SimplifyEngines, JaVerificationAgreesWithPlainRun) {
  gen::SyntheticSpec spec;
  spec.seed = 7;
  spec.rings = 1;
  spec.ring_size = 4;
  spec.ring_props = 4;
  spec.pair_props = 2;
  spec.unreachable_props = 2;
  spec.det_fail_props = 1;
  aig::Aig design = gen::make_synthetic(spec);
  ts::TransitionSystem ts(design);

  mp::SeparateOptions plain;
  plain.local_proofs = true;
  mp::SeparateOptions with_simp = plain;
  with_simp.simplify = true;

  mp::MultiResult a = mp::SeparateVerifier(ts, plain).run();
  mp::MultiResult b = mp::SeparateVerifier(ts, with_simp).run();
  ASSERT_EQ(a.per_property.size(), b.per_property.size());
  for (std::size_t p = 0; p < a.per_property.size(); ++p) {
    EXPECT_EQ(a.per_property[p].verdict, b.per_property[p].verdict)
        << "property " << p;
  }
}

}  // namespace
}  // namespace javer
